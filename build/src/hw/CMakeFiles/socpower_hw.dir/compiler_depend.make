# Empty compiler generated dependencies file for socpower_hw.
# This may be replaced when dependencies are built.
