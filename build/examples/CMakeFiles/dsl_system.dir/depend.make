# Empty dependencies file for dsl_system.
# This may be replaced when dependencies are built.
