file(REMOVE_RECURSE
  "CMakeFiles/dsl_system.dir/dsl_system.cpp.o"
  "CMakeFiles/dsl_system.dir/dsl_system.cpp.o.d"
  "dsl_system"
  "dsl_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
