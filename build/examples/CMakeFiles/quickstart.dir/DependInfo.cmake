
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systems/CMakeFiles/socpower_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/socpower_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/socpower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/swsyn/CMakeFiles/socpower_swsyn.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/socpower_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsyn/CMakeFiles/socpower_hwsyn.dir/DependInfo.cmake"
  "/root/repo/build/src/cfsm/CMakeFiles/socpower_cfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/socpower_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/socpower_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/socpower_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/socpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
