# Empty compiler generated dependencies file for characterize_macromodel.
# This may be replaced when dependencies are built.
