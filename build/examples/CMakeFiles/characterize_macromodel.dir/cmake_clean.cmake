file(REMOVE_RECURSE
  "CMakeFiles/characterize_macromodel.dir/characterize_macromodel.cpp.o"
  "CMakeFiles/characterize_macromodel.dir/characterize_macromodel.cpp.o.d"
  "characterize_macromodel"
  "characterize_macromodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_macromodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
