file(REMOVE_RECURSE
  "CMakeFiles/socpower_cosim.dir/socpower_cosim.cpp.o"
  "CMakeFiles/socpower_cosim.dir/socpower_cosim.cpp.o.d"
  "socpower_cosim"
  "socpower_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
