# Empty dependencies file for socpower_cosim.
# This may be replaced when dependencies are built.
