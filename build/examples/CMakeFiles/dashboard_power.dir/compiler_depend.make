# Empty compiler generated dependencies file for dashboard_power.
# This may be replaced when dependencies are built.
