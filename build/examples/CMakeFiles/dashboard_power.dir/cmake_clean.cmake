file(REMOVE_RECURSE
  "CMakeFiles/dashboard_power.dir/dashboard_power.cpp.o"
  "CMakeFiles/dashboard_power.dir/dashboard_power.cpp.o.d"
  "dashboard_power"
  "dashboard_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashboard_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
