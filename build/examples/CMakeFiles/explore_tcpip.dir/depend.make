# Empty dependencies file for explore_tcpip.
# This may be replaced when dependencies are built.
