file(REMOVE_RECURSE
  "CMakeFiles/explore_tcpip.dir/explore_tcpip.cpp.o"
  "CMakeFiles/explore_tcpip.dir/explore_tcpip.cpp.o.d"
  "explore_tcpip"
  "explore_tcpip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_tcpip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
