# Empty compiler generated dependencies file for socpower_tests.
# This may be replaced when dependencies are built.
