
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accel.cpp" "tests/CMakeFiles/socpower_tests.dir/test_accel.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_accel.cpp.o.d"
  "/root/repo/tests/test_bus_property.cpp" "tests/CMakeFiles/socpower_tests.dir/test_bus_property.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_bus_property.cpp.o.d"
  "/root/repo/tests/test_bus_scheduler.cpp" "tests/CMakeFiles/socpower_tests.dir/test_bus_scheduler.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_bus_scheduler.cpp.o.d"
  "/root/repo/tests/test_bus_width.cpp" "tests/CMakeFiles/socpower_tests.dir/test_bus_width.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_bus_width.cpp.o.d"
  "/root/repo/tests/test_cache_bus.cpp" "tests/CMakeFiles/socpower_tests.dir/test_cache_bus.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_cache_bus.cpp.o.d"
  "/root/repo/tests/test_codegen_more.cpp" "tests/CMakeFiles/socpower_tests.dir/test_codegen_more.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_codegen_more.cpp.o.d"
  "/root/repo/tests/test_coestimator.cpp" "tests/CMakeFiles/socpower_tests.dir/test_coestimator.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_coestimator.cpp.o.d"
  "/root/repo/tests/test_compactor_param.cpp" "tests/CMakeFiles/socpower_tests.dir/test_compactor_param.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_compactor_param.cpp.o.d"
  "/root/repo/tests/test_config_matrix.cpp" "tests/CMakeFiles/socpower_tests.dir/test_config_matrix.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_config_matrix.cpp.o.d"
  "/root/repo/tests/test_dsl.cpp" "tests/CMakeFiles/socpower_tests.dir/test_dsl.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_dsl.cpp.o.d"
  "/root/repo/tests/test_explorer.cpp" "tests/CMakeFiles/socpower_tests.dir/test_explorer.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_explorer.cpp.o.d"
  "/root/repo/tests/test_expr.cpp" "tests/CMakeFiles/socpower_tests.dir/test_expr.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_expr.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/socpower_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/socpower_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_hwsyn.cpp" "tests/CMakeFiles/socpower_tests.dir/test_hwsyn.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_hwsyn.cpp.o.d"
  "/root/repo/tests/test_hwsyn_edge.cpp" "tests/CMakeFiles/socpower_tests.dir/test_hwsyn_edge.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_hwsyn_edge.cpp.o.d"
  "/root/repo/tests/test_integration_extra.cpp" "tests/CMakeFiles/socpower_tests.dir/test_integration_extra.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_integration_extra.cpp.o.d"
  "/root/repo/tests/test_iss.cpp" "tests/CMakeFiles/socpower_tests.dir/test_iss.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_iss.cpp.o.d"
  "/root/repo/tests/test_iss_more.cpp" "tests/CMakeFiles/socpower_tests.dir/test_iss_more.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_iss_more.cpp.o.d"
  "/root/repo/tests/test_misc_coverage.cpp" "tests/CMakeFiles/socpower_tests.dir/test_misc_coverage.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_misc_coverage.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/socpower_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/socpower_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/socpower_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_rtl_power.cpp" "tests/CMakeFiles/socpower_tests.dir/test_rtl_power.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_rtl_power.cpp.o.d"
  "/root/repo/tests/test_sgraph.cpp" "tests/CMakeFiles/socpower_tests.dir/test_sgraph.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_sgraph.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/socpower_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/socpower_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_swsyn.cpp" "tests/CMakeFiles/socpower_tests.dir/test_swsyn.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_swsyn.cpp.o.d"
  "/root/repo/tests/test_systems.cpp" "tests/CMakeFiles/socpower_tests.dir/test_systems.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_systems.cpp.o.d"
  "/root/repo/tests/test_trace_inventory.cpp" "tests/CMakeFiles/socpower_tests.dir/test_trace_inventory.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_trace_inventory.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/socpower_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_vcd.cpp" "tests/CMakeFiles/socpower_tests.dir/test_vcd.cpp.o" "gcc" "tests/CMakeFiles/socpower_tests.dir/test_vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systems/CMakeFiles/socpower_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/socpower_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/socpower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/swsyn/CMakeFiles/socpower_swsyn.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/socpower_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsyn/CMakeFiles/socpower_hwsyn.dir/DependInfo.cmake"
  "/root/repo/build/src/cfsm/CMakeFiles/socpower_cfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/socpower_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/socpower_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/socpower_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/socpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
