// Worker-pool contract tests: every index runs exactly once, exceptions
// propagate deterministically, and nested parallel_for cannot deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace socpower {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ResultsByIndexMatchSerial) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 257;
  std::vector<std::uint64_t> parallel(kN, 0), serial(kN, 0);
  auto work = [](std::size_t i) {
    std::uint64_t acc = i;
    for (int k = 0; k < 1000; ++k) acc = acc * 6364136223846793005ull + i;
    return acc;
  };
  pool.parallel_for(kN, [&](std::size_t i) { parallel[i] = work(i); });
  for (std::size_t i = 0; i < kN; ++i) serial[i] = work(i);
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(64, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPool, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(resolve_thread_count(0), 1u);
  EXPECT_EQ(resolve_thread_count(3), 3u);
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 17 || i == 63) throw std::runtime_error("bad " + std::to_string(i));
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "bad 17");
  }
  // Every non-throwing index still ran (the loop completes before the
  // rethrow, so the pool is reusable afterwards).
  EXPECT_EQ(completed.load(), 98);
  std::atomic<int> after{0};
  pool.parallel_for(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8, kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    // A nested call on the same (or any) pool must not deadlock on pool
    // capacity; it runs inline on this worker.
    pool.parallel_for(kInner, [&](std::size_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, NestedExceptionPropagatesThroughOuterLoop) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t o) {
                          pool.parallel_for(4, [&](std::size_t i) {
                            if (o == 1 && i == 2)
                              throw std::logic_error("inner");
                          });
                        }),
      std::logic_error);
}

}  // namespace
}  // namespace socpower
