// Discrete-event machinery tests: event queue ordering/instant semantics and
// the power trace book-keeper (waveforms, peaks).
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/power_trace.hpp"

namespace socpower::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.post(30, 0, 0);
  q.post(10, 1, 0);
  q.post(20, 2, 0);
  EXPECT_EQ(q.next_time(), 10u);
  EXPECT_EQ(q.pop_instant()[0].event, 1);
  EXPECT_EQ(q.pop_instant()[0].event, 2);
  EXPECT_EQ(q.pop_instant()[0].event, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InstantGroupsSimultaneousEvents) {
  EventQueue q;
  q.post(5, 0, 0);
  q.post(5, 1, 0);
  q.post(6, 2, 0);
  const auto instant = q.pop_instant();
  EXPECT_EQ(instant.size(), 2u);
  EXPECT_EQ(instant[0].time, 5u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PostingOrderPreservedWithinInstant) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.post(7, i, i * 10);
  const auto instant = q.pop_instant();
  ASSERT_EQ(instant.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(instant[static_cast<std::size_t>(i)].event, i);
    EXPECT_EQ(instant[static_cast<std::size_t>(i)].value, i * 10);
  }
}

TEST(EventQueue, PopInstantReusesCallerBuffer) {
  EventQueue q;
  q.post(5, 0, 0);
  q.post(5, 1, 1);
  q.post(9, 2, 2);
  std::vector<EventOccurrence> buf;
  buf.push_back({});  // stale content must be cleared, not appended to
  q.pop_instant(buf);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0].event, 0);
  EXPECT_EQ(buf[1].event, 1);
  q.pop_instant(buf);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0].event, 2);
  q.pop_instant(buf);  // empty queue leaves an empty buffer
  EXPECT_TRUE(buf.empty());
}

TEST(EventQueue, SourceTracked) {
  EventQueue q;
  q.post(1, 0, 0, /*source=*/3);
  EXPECT_EQ(q.pop_instant()[0].source, 3);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.post(1, 0, 0);
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(Stimulus, LoadAndHorizon) {
  Stimulus s;
  s.add(10, 0);
  s.add(50, 1, 7);
  s.add(30, 2);
  EXPECT_EQ(s.horizon(), 50u);
  EventQueue q;
  s.load_into(q);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.next_time(), 10u);
}

TEST(PowerTrace, TotalsPerComponent) {
  PowerTrace t;
  const auto cpu = t.add_component("cpu");
  const auto bus = t.add_component("bus");
  t.record(cpu, 0, 1e-9);
  t.record(cpu, 5, 2e-9);
  t.record(bus, 3, 10e-9);
  EXPECT_DOUBLE_EQ(t.total(cpu), 3e-9);
  EXPECT_DOUBLE_EQ(t.total(bus), 10e-9);
  EXPECT_DOUBLE_EQ(t.grand_total(), 13e-9);
  EXPECT_EQ(t.end_time(), 5u);
  EXPECT_EQ(t.component_id("bus"), bus);
  EXPECT_EQ(t.component_id("nope"), -1);
}

TEST(PowerTrace, WaveformBucketsEnergy) {
  PowerTrace t(ElectricalParams{.vdd_volts = 3.3, .clock_hz = 1e6});
  const auto c = t.add_component("c");
  t.record(c, 0, 1e-9);
  t.record(c, 9, 1e-9);
  t.record(c, 10, 4e-9);
  const auto wf = t.waveform(c, 10);
  ASSERT_EQ(wf.size(), 2u);
  EXPECT_DOUBLE_EQ(wf[0].energy, 2e-9);
  EXPECT_DOUBLE_EQ(wf[1].energy, 4e-9);
  // 10 cycles at 1 MHz = 10 us; P = E / t.
  EXPECT_NEAR(wf[1].watts, 4e-9 / 10e-6, 1e-15);
}

TEST(PowerTrace, PeakWindowsDescending) {
  PowerTrace t;
  const auto c = t.add_component("c");
  t.record(c, 5, 1e-9);
  t.record(c, 15, 9e-9);
  t.record(c, 25, 4e-9);
  const auto wf = t.waveform(c, 10);
  const auto peaks = PowerTrace::peak_windows(wf, 2);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 1u);
  EXPECT_EQ(peaks[1], 2u);
}

TEST(PowerTrace, OutOfRangeRecordIsDroppedAndCounted) {
  // Regression: record() with an invalid component id used to be assert-only
  // (unchecked indexing under NDEBUG). It must be checked in every build
  // type: the sample is discarded and counted, existing books untouched.
  PowerTrace t;
  const auto c = t.add_component("cpu");
  t.record(c, 1, 1e-9);
  t.record(static_cast<ComponentId>(99), 2, 5e-9);
  t.record(static_cast<ComponentId>(-1), 3, 5e-9);
  EXPECT_EQ(t.dropped_records(), 2u);
  EXPECT_DOUBLE_EQ(t.grand_total(), 1e-9);
  EXPECT_EQ(t.end_time(), 1u);  // dropped samples don't advance time
  t.reset();
  EXPECT_EQ(t.dropped_records(), 0u);
}

TEST(PowerTrace, KeepSamplesOffStillTotals) {
  PowerTrace t;
  const auto c = t.add_component("c");
  t.set_keep_samples(false);
  t.record(c, 3, 7e-9);
  EXPECT_DOUBLE_EQ(t.total(c), 7e-9);
  const auto wf = t.waveform(c, 10);  // no samples -> empty energy
  EXPECT_DOUBLE_EQ(wf[0].energy, 0.0);
}

TEST(PowerTrace, ResetClearsTotalsKeepsComponents) {
  PowerTrace t;
  const auto c = t.add_component("c");
  t.record(c, 1, 1e-9);
  t.reset();
  EXPECT_DOUBLE_EQ(t.total(c), 0.0);
  EXPECT_EQ(t.component_count(), 1u);
}

}  // namespace
}  // namespace socpower::sim
