// End-to-end smoke tests: the three benchmark systems run to completion
// under every acceleration mode and produce self-consistent results.
#include <gtest/gtest.h>

#include "core/coestimator.hpp"
#include "systems/dashboard.hpp"
#include "systems/prodcons.hpp"
#include "systems/tcpip.hpp"

namespace socpower {
namespace {

TEST(Smoke, ProdConsRunsAndConsumesEnergy) {
  systems::ProdConsSystem sys({.num_packets = 4, .bytes_per_packet = 8});
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto res = est.run(sys.stimulus(/*horizon=*/20000));
  EXPECT_FALSE(res.truncated);
  EXPECT_GT(res.total_energy, 0.0);
  EXPECT_GT(res.process_energy[static_cast<std::size_t>(sys.producer())], 0.0);
  EXPECT_GT(res.process_energy[static_cast<std::size_t>(sys.consumer())], 0.0);
  EXPECT_GT(res.sw_reactions, 0u);
  EXPECT_GT(res.hw_reactions, 0u);
}

TEST(Smoke, TcpIpChecksumsAllPacketsCorrectly) {
  systems::TcpIpSystem sys({.num_packets = 3, .packet_bytes = 32});
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto res = est.run(sys.stimulus());
  EXPECT_FALSE(res.truncated);
  EXPECT_EQ(sys.packets_ok(est), 3);
  EXPECT_EQ(sys.packets_bad(est), 0);
  EXPECT_GT(res.bus_energy, 0.0);
  EXPECT_GT(res.cpu_energy, 0.0);
  EXPECT_GT(res.hw_energy, 0.0);
}

TEST(Smoke, DashboardRuns) {
  systems::DashboardSystem sys({.frames = 12});
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto res = est.run(sys.stimulus());
  EXPECT_FALSE(res.truncated);
  EXPECT_GT(res.total_energy, 0.0);
  EXPECT_GT(res.sw_reactions, 0u);
  EXPECT_GT(res.hw_reactions, 0u);
}

TEST(Smoke, AllAccelerationModesComplete) {
  for (const auto accel :
       {core::Acceleration::kNone, core::Acceleration::kCaching,
        core::Acceleration::kMacroModel, core::Acceleration::kSampling}) {
    systems::TcpIpSystem sys({.num_packets = 2, .packet_bytes = 16});
    core::CoEstimatorConfig cfg;
    cfg.accel = accel;
    core::CoEstimator est(&sys.network(), cfg);
    sys.configure(est);
    est.prepare();
    const auto res = est.run(sys.stimulus());
    EXPECT_FALSE(res.truncated) << core::acceleration_name(accel);
    EXPECT_GT(res.total_energy, 0.0) << core::acceleration_name(accel);
    EXPECT_EQ(sys.packets_ok(est), 2) << core::acceleration_name(accel);
  }
}

}  // namespace
}  // namespace socpower
