// Unit tests for the utility layer: units, statistics, histograms, RNG,
// table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace socpower {
namespace {

TEST(Units, SwitchEnergyQuadraticInVdd) {
  ElectricalParams p33{.vdd_volts = 3.3};
  ElectricalParams p16{.vdd_volts = 1.65};
  const double c = 10e-12;
  EXPECT_DOUBLE_EQ(p33.switch_energy(c) / p16.switch_energy(c), 4.0);
}

TEST(Units, SwitchEnergyFormula) {
  ElectricalParams p{.vdd_volts = 2.0};
  EXPECT_DOUBLE_EQ(p.switch_energy(1e-12), 0.5 * 1e-12 * 4.0);
}

TEST(Units, SecondsAtClock) {
  ElectricalParams p{.vdd_volts = 3.3, .clock_hz = 100e6};
  EXPECT_DOUBLE_EQ(p.seconds(100), 1e-6);
}

TEST(Units, AveragePower) {
  ElectricalParams p{.vdd_volts = 3.3, .clock_hz = 1e6};
  // 1 J over 1e6 cycles at 1 MHz = 1 second -> 1 W.
  EXPECT_DOUBLE_EQ(p.average_power_watts(1.0, 1'000'000), 1.0);
  EXPECT_DOUBLE_EQ(p.average_power_watts(1.0, 0), 0.0);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_nanojoules(1e-9), 1.0);
  EXPECT_DOUBLE_EQ(to_microjoules(1e-6), 1.0);
  EXPECT_DOUBLE_EQ(to_millijoules(1e-3), 1.0);
  EXPECT_DOUBLE_EQ(from_nanojoules(2.5), 2.5e-9);
}

TEST(Units, FormatEnergyPicksUnit) {
  EXPECT_NE(format_energy(1.0).find(" J"), std::string::npos);
  EXPECT_NE(format_energy(2e-3).find("mJ"), std::string::npos);
  EXPECT_NE(format_energy(3e-6).find("uJ"), std::string::npos);
  EXPECT_NE(format_energy(4e-9).find("nJ"), std::string::npos);
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesTwoPassComputation) {
  const std::vector<double> xs = {1.5, 2.25, -3.0, 4.75, 0.0, 10.5, -7.25};
  RunningStats s;
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), m2 / static_cast<double>(xs.size()), 1e-12);
  EXPECT_NEAR(s.sample_variance(),
              m2 / static_cast<double>(xs.size() - 1), 1e-12);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, ConstantSeriesHasZeroVarianceAndCv) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats s;
  // Values around 1e9 with unit variance would break a naive sum-of-squares.
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Stats, PercentError) {
  EXPECT_DOUBLE_EQ(percent_error(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(percent_error(90, 100), 10.0);
  EXPECT_DOUBLE_EQ(percent_error(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(percent_error(1, 0), 100.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const double x[] = {1, 2, 3, 4, 5};
  const double y[] = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y, 5), 1.0, 1e-12);
  const double yn[] = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, yn, 5), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const double x[] = {1, 1, 1};
  const double y[] = {2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y, 3), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y, 1), 0.0);
}

TEST(Stats, SameRanking) {
  const double x[] = {3.0, 1.0, 2.0};
  const double y[] = {30.0, 10.0, 20.0};
  EXPECT_TRUE(same_ranking(x, y, 3));
  const double z[] = {10.0, 30.0, 20.0};
  EXPECT_FALSE(same_ranking(x, z, 3));
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ModeAndConcentration) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) h.add(5.5);
  h.add(1.0);
  h.add(9.0);
  EXPECT_EQ(h.mode_bin(), 5u);
  EXPECT_NEAR(h.concentration(0), 50.0 / 52.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.concentration(10), 1.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 20.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowBound) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| 22222"), std::string::npos);
  // All lines the same width.
  std::size_t first_len = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const auto nl = out.find('\n', pos);
    EXPECT_EQ(nl - pos, first_len);
    pos = nl + 1;
  }
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW({ const auto s = t.render(); (void)s; });
}

}  // namespace
}  // namespace socpower
