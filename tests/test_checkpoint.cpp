// Checkpoint/restore correctness.
//
// The core contract: interrupting a session at ANY point — snapshot the
// warm state, rebuild a cold estimator in a child process, import, continue
// the workload — must reproduce the uninterrupted session's remaining
// results bit-identically (energies compared as IEEE-754 bit patterns).
// Fuzzed over seeds, system parameters, snapshot points, and a cycling mix
// of acceleration modes.
//
// Plus the rejection paths: wrong magic, unknown version, truncation,
// payload corruption (every failure mode with a distinct message), and an
// unknown-system checkpoint that decodes fine but cannot restore.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/wire.hpp"
#include "serve/checkpoint.hpp"
#include "serve/session.hpp"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace socpower::serve {
namespace {

/// The fuzz workload: six runs cycling through acceleration modes, with the
/// reaction cache on so there is real warm state to carry.
std::vector<RunRequest> workload() {
  std::vector<RunRequest> reqs;
  for (int i = 0; i < 6; ++i) {
    RunRequest rr;
    rr.accel = static_cast<std::uint8_t>(i % 4);  // none..sampling
    if (static_cast<core::Acceleration>(rr.accel) ==
        core::Acceleration::kCaching)
      rr.ecache_thresh_variance = 0.5;
    rr.hw_batch = i % 2 == 0;
    rr.hw_flush_threads = 1;
    reqs.push_back(rr);
  }
  return reqs;
}

SystemParams fuzz_system(std::uint64_t seed) {
  SystemParams sp;
  sp.name = "tcpip";
  sp.set("num_packets", 2 + static_cast<std::int64_t>(seed % 3));
  sp.set("packet_bytes", seed % 2 == 0 ? 32 : 64);
  sp.set("ip_check_in_hw", seed % 2 == 0 ? 1 : 0);
  sp.set("checksum_rtl_estimator", seed % 3 == 0 ? 1 : 0);
  sp.set("seed", static_cast<std::int64_t>(seed));
  return sp;
}

/// The result fields the continuation must reproduce, as raw bit patterns.
std::vector<std::uint64_t> result_bits(const core::RunResults& r) {
  return {std::bit_cast<std::uint64_t>(r.total_energy),
          std::bit_cast<std::uint64_t>(r.cpu_energy),
          std::bit_cast<std::uint64_t>(r.hw_energy),
          std::bit_cast<std::uint64_t>(r.bus_energy),
          std::bit_cast<std::uint64_t>(r.cache_energy),
          r.end_time,
          r.reactions,
          r.iss_invocations,
          r.iss_instructions,
          r.gate_sim_cycles,
          r.cache_hits_served};
}

#if !defined(_WIN32)
TEST(Checkpoint, MidWorkloadRestoreInChildIsBitIdentical) {
  if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
  const std::vector<RunRequest> reqs = workload();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SystemParams sp = fuzz_system(seed);
    const StructuralConfig sc;

    // Reference: the uninterrupted session.
    std::string error;
    std::unique_ptr<Session> ref = Session::create(sp, sc, &error);
    ASSERT_NE(ref, nullptr) << error;
    std::vector<std::vector<std::uint64_t>> ref_bits;
    for (const RunRequest& rr : reqs) {
      core::RunResults res;
      ASSERT_TRUE(ref->estimate(rr, &res, nullptr, &error)) << error;
      ref_bits.push_back(result_bits(res));
    }

    // Interrupted: run to `snap`, checkpoint, restore in a forked child,
    // run the remainder there, ship the raw bits back over a pipe.
    const std::size_t snap = 1 + seed % (reqs.size() - 1);
    std::unique_ptr<Session> hot = Session::create(sp, sc, &error);
    ASSERT_NE(hot, nullptr) << error;
    for (std::size_t i = 0; i < snap; ++i) {
      core::RunResults res;
      ASSERT_TRUE(hot->estimate(reqs[i], &res, nullptr, &error)) << error;
      EXPECT_EQ(result_bits(res), ref_bits[i]);
    }
    const std::vector<std::uint8_t> blob =
        encode_checkpoint(hot->checkpoint());

    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipefd[0]);
      Checkpoint ckpt;
      std::string child_error;
      bool ok = decode_checkpoint(blob, &ckpt, &child_error);
      std::unique_ptr<Session> restored =
          ok ? Session::restore(ckpt, &child_error) : nullptr;
      ok = restored != nullptr;
      std::vector<std::uint64_t> out;
      for (std::size_t i = snap; ok && i < reqs.size(); ++i) {
        core::RunResults res;
        ok = restored->estimate(reqs[i], &res, nullptr, &child_error);
        if (ok)
          for (const std::uint64_t b : result_bits(res)) out.push_back(b);
      }
      const std::uint8_t flag = ok ? 1 : 0;
      (void)!::write(pipefd[1], &flag, 1);
      if (ok)
        (void)!::write(pipefd[1], out.data(), out.size() * sizeof out[0]);
      ::close(pipefd[1]);
      ::_exit(0);
    }
    ::close(pipefd[1]);
    std::uint8_t flag = 0;
    ASSERT_EQ(::read(pipefd[0], &flag, 1), 1);
    ASSERT_EQ(flag, 1) << "child failed to restore/continue";
    std::vector<std::uint64_t> expect;
    for (std::size_t i = snap; i < reqs.size(); ++i)
      for (const std::uint64_t b : ref_bits[i]) expect.push_back(b);
    std::vector<std::uint64_t> got(expect.size(), 0);
    std::size_t off = 0;
    const std::size_t want = got.size() * sizeof got[0];
    while (off < want) {
      const ssize_t n = ::read(
          pipefd[0], reinterpret_cast<std::uint8_t*>(got.data()) + off,
          want - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
    ::close(pipefd[0]);
    int status = 0;
    ::waitpid(pid, &status, 0);
    EXPECT_EQ(got, expect) << "restored continuation diverged";
  }
}
#endif

TEST(Checkpoint, RoundTripPreservesEveryField) {
  std::string error;
  const SystemParams sp = fuzz_system(2);
  const StructuralConfig sc;
  std::unique_ptr<Session> session = Session::create(sp, sc, &error);
  ASSERT_NE(session, nullptr) << error;
  RunRequest rr;
  rr.accel = static_cast<std::uint8_t>(core::Acceleration::kCaching);
  rr.ecache_thresh_variance = 0.5;
  core::RunResults res;
  ASSERT_TRUE(session->estimate(rr, &res, nullptr, &error)) << error;

  const Checkpoint before = session->checkpoint();
  const std::vector<std::uint8_t> blob = encode_checkpoint(before);
  Checkpoint after;
  ASSERT_TRUE(decode_checkpoint(blob, &after, &error)) << error;

  EXPECT_EQ(after.system.name, before.system.name);
  EXPECT_EQ(after.system.kv, before.system.kv);
  ASSERT_EQ(after.warm.backends.size(), before.warm.backends.size());
  for (std::size_t b = 0; b < before.warm.backends.size(); ++b) {
    EXPECT_EQ(after.warm.backends[b].block_entries,
              before.warm.backends[b].block_entries);
    ASSERT_EQ(after.warm.backends[b].reactions.size(),
              before.warm.backends[b].reactions.size());
    for (std::size_t u = 0; u < before.warm.backends[b].reactions.size();
         ++u) {
      const auto& bu = before.warm.backends[b].reactions[u];
      const auto& au = after.warm.backends[b].reactions[u];
      EXPECT_EQ(au.task, bu.task);
      ASSERT_EQ(au.entries.size(), bu.entries.size());
      for (std::size_t e = 0; e < bu.entries.size(); ++e) {
        EXPECT_EQ(au.entries[e].key, bu.entries[e].key);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(au.entries[e].energy),
                  std::bit_cast<std::uint64_t>(bu.entries[e].energy));
        EXPECT_EQ(au.entries[e].toggles, bu.entries[e].toggles);
        EXPECT_EQ(au.entries[e].latch_begin, bu.entries[e].latch_begin);
        EXPECT_EQ(au.entries[e].gate_evals, bu.entries[e].gate_evals);
      }
    }
  }
  ASSERT_EQ(after.warm.ecache.size(), before.warm.ecache.size());
  for (std::size_t i = 0; i < before.warm.ecache.size(); ++i) {
    EXPECT_EQ(after.warm.ecache[i].task, before.warm.ecache[i].task);
    EXPECT_EQ(after.warm.ecache[i].path, before.warm.ecache[i].path);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(after.warm.ecache[i].energy.mean),
              std::bit_cast<std::uint64_t>(before.warm.ecache[i].energy.mean));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(after.warm.ecache[i].energy.m2),
              std::bit_cast<std::uint64_t>(before.warm.ecache[i].energy.m2));
    EXPECT_EQ(after.warm.ecache[i].cycles.n, before.warm.ecache[i].cycles.n);
  }
  EXPECT_EQ(after.warm.ecache_hits, before.warm.ecache_hits);
  EXPECT_EQ(after.warm.ecache_simulations, before.warm.ecache_simulations);
}

TEST(Checkpoint, RejectsBadMagicVersionTruncationAndCorruption) {
  std::string error;
  std::unique_ptr<Session> session =
      Session::create(fuzz_system(1), StructuralConfig{}, &error);
  ASSERT_NE(session, nullptr) << error;
  const std::vector<std::uint8_t> good = encode_checkpoint(
      session->checkpoint());
  Checkpoint out;
  ASSERT_TRUE(decode_checkpoint(good, &out, &error)) << error;

  {  // bad magic
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xff;
    EXPECT_FALSE(decode_checkpoint(bad, &out, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
  }
  {  // unknown version
    std::vector<std::uint8_t> bad = good;
    bad[4] = 0x7f;
    EXPECT_FALSE(decode_checkpoint(bad, &out, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }
  {  // truncated: shorter than the header
    std::vector<std::uint8_t> bad(good.begin(), good.begin() + 10);
    EXPECT_FALSE(decode_checkpoint(bad, &out, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  }
  {  // truncated: payload cut short
    std::vector<std::uint8_t> bad(good.begin(), good.end() - 7);
    EXPECT_FALSE(decode_checkpoint(bad, &out, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  }
  {  // every single-byte payload corruption trips the hash
    for (const std::size_t at : {std::size_t{24}, good.size() / 2,
                                 good.size() - 1}) {
      std::vector<std::uint8_t> bad = good;
      bad[at] ^= 0x01;
      EXPECT_FALSE(decode_checkpoint(bad, &out, &error)) << "offset " << at;
      EXPECT_NE(error.find("hash"), std::string::npos) << error;
    }
  }
  {  // trailing garbage changes the length
    std::vector<std::uint8_t> bad = good;
    bad.push_back(0);
    EXPECT_FALSE(decode_checkpoint(bad, &out, &error));
    EXPECT_NE(error.find("length"), std::string::npos) << error;
  }
}

TEST(Checkpoint, UnknownSystemDecodesButCannotRestore) {
  // A well-formed checkpoint whose system this build does not know: the
  // container layer accepts it, the session layer rejects it.
  Checkpoint c;
  c.system.name = "warp-drive";
  const std::vector<std::uint8_t> blob = encode_checkpoint(c);
  Checkpoint out;
  std::string error;
  ASSERT_TRUE(decode_checkpoint(blob, &out, &error)) << error;
  EXPECT_EQ(Session::restore(out, &error), nullptr);
  EXPECT_NE(error.find("unknown system"), std::string::npos) << error;
}

TEST(Checkpoint, FileRoundTrip) {
  std::string error;
  std::unique_ptr<Session> session =
      Session::create(fuzz_system(3), StructuralConfig{}, &error);
  ASSERT_NE(session, nullptr) << error;
  const Checkpoint c = session->checkpoint();
  const std::string path = ::testing::TempDir() + "socpower_ckpt_test.bin";
  ASSERT_TRUE(write_checkpoint_file(path, c));
  Checkpoint out;
  ASSERT_TRUE(read_checkpoint_file(path, &out, &error)) << error;
  EXPECT_EQ(out.system.name, c.system.name);
  EXPECT_EQ(session_key(out.system, out.structural),
            session_key(c.system, c.structural));
  EXPECT_FALSE(read_checkpoint_file(path + ".missing", &out, &error));
}

}  // namespace
}  // namespace socpower::serve
