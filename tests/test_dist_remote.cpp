// Fault-injection tests for the out-of-process hardware estimator workers.
//
// The recovery ladder is: primary worker dies -> promote the pre-forked
// standby and replay the request log; standby dead too -> replay into an
// in-process dist::Worker. Both rungs must leave the run BIT-identical to a
// plain in-process run (EXPECT_EQ on doubles) because replay drives the same
// frame stream through the same Worker code — these tests SIGKILL workers
// mid-run via the debug hook and check exactly that, plus the telemetry
// counters that make the degradation observable.
#include <gtest/gtest.h>

#include <string>

#include "core/coestimator.hpp"
#include "dist/remote_hw_estimator.hpp"
#include "dist/wire.hpp"
#include "systems/tcpip.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace socpower::dist {
namespace {

systems::TcpIpParams gate_params() {
  systems::TcpIpParams p;
  p.num_packets = 4;
  p.packet_bytes = 64;
  p.ip_check_in_hw = true;
  p.seed = 7;
  return p;
}

core::CoEstimatorConfig remote_config() {
  core::CoEstimatorConfig cfg;
  cfg.hw_remote = true;
  cfg.dist_flush_chunk = 3;  // tiny: many chunk slices even on a small run
  return cfg;
}

/// The remote hw_gate backend behind the facade. backends() hands out const
/// pointers; the fault-injection hook is inherently non-const, hence the
/// const_cast (test-only).
RemoteHwEstimator* find_remote(const core::CoEstimator& est) {
  for (const core::ComponentEstimator* b : est.backends())
    if (auto* r = dynamic_cast<const RemoteHwEstimator*>(b))
      return const_cast<RemoteHwEstimator*>(r);
  return nullptr;
}

void expect_bit_identical(const core::RunResults& a,
                          const core::RunResults& b) {
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.cpu_energy, b.cpu_energy);
  EXPECT_EQ(a.hw_energy, b.hw_energy);
  EXPECT_EQ(a.bus_energy, b.bus_energy);
  EXPECT_EQ(a.cache_energy, b.cache_energy);
  EXPECT_EQ(a.process_energy, b.process_energy);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.reactions, b.reactions);
  EXPECT_EQ(a.gate_sim_cycles, b.gate_sim_cycles);
  EXPECT_EQ(a.cache_hits_served, b.cache_hits_served);
  EXPECT_EQ(a.bus_totals.transfers, b.bus_totals.transfers);
}

core::RunResults baseline_run() {
  systems::TcpIpSystem sys(gate_params());
  core::CoEstimator est(&sys.network(), core::CoEstimatorConfig{});
  sys.configure(est);
  est.prepare();
  return est.run(sys.stimulus());
}

class TelemetryOn {
 public:
  TelemetryOn() { telemetry::set_enabled(true, false); }
  ~TelemetryOn() { telemetry::set_enabled(false, false); }
};

TEST(DistRemote, KillAllWorkersMidRunFallsBackBitIdentical) {
  if (!supported()) GTEST_SKIP() << "no fork/socketpair";
  const core::RunResults want = baseline_run();

  TelemetryOn telem;
  auto& reg = telemetry::registry();
  telemetry::Counter& global_fallbacks = reg.counter("dist.fallbacks");
  telemetry::Counter& fallbacks =
      reg.counter("estimator.hw.gate.remote.dist.fallbacks");
  const std::uint64_t global_before = global_fallbacks.value();
  const std::uint64_t before = fallbacks.value();

  systems::TcpIpSystem sys(gate_params());
  core::CoEstimator est(&sys.network(), remote_config());
  sys.configure(est);
  est.prepare();
  RemoteHwEstimator* remote = find_remote(est);
  ASSERT_NE(remote, nullptr);
  ASSERT_TRUE(remote->remote_active());

  // SIGKILL primary AND standby a few transitions in: the next RPC hits a
  // dead socket, standby promotion fails too, and the in-process fallback
  // replays the log. The run must not notice.
  int transitions = 0;
  est.set_transition_hook([&](const core::TransitionRecord&) {
    if (++transitions == 10) remote->debug_kill_workers(true);
  });
  const core::RunResults got = est.run(sys.stimulus());
  EXPECT_GE(transitions, 10);

  expect_bit_identical(got, want);
  EXPECT_FALSE(remote->remote_active());
  EXPECT_GE(fallbacks.value(), before + 1);
  EXPECT_GE(global_fallbacks.value(), global_before + 1);
}

TEST(DistRemote, KillPrimaryPromotesStandbyBitIdentical) {
  if (!supported()) GTEST_SKIP() << "no fork/socketpair";
  const core::RunResults want = baseline_run();

  TelemetryOn telem;
  auto& reg = telemetry::registry();
  telemetry::Counter& respawns =
      reg.counter("estimator.hw.gate.remote.dist.respawns");
  const std::uint64_t before = respawns.value();

  systems::TcpIpSystem sys(gate_params());
  core::CoEstimator est(&sys.network(), remote_config());
  sys.configure(est);
  est.prepare();
  RemoteHwEstimator* remote = find_remote(est);
  ASSERT_NE(remote, nullptr);
  ASSERT_TRUE(remote->remote_active());

  int transitions = 0;
  est.set_transition_hook([&](const core::TransitionRecord&) {
    if (++transitions == 10) remote->debug_kill_workers(false);
  });
  const core::RunResults got = est.run(sys.stimulus());

  expect_bit_identical(got, want);
  // The standby took over, so requests still leave the process.
  EXPECT_TRUE(remote->remote_active());
  EXPECT_GE(respawns.value(), before + 1);
}

TEST(DistRemote, SecondRunAfterFallbackStillMatches) {
  if (!supported()) GTEST_SKIP() << "no fork/socketpair";
  const core::RunResults want = baseline_run();

  systems::TcpIpSystem sys(gate_params());
  core::CoEstimator est(&sys.network(), remote_config());
  sys.configure(est);
  est.prepare();
  RemoteHwEstimator* remote = find_remote(est);
  ASSERT_NE(remote, nullptr);

  int transitions = 0;
  est.set_transition_hook([&](const core::TransitionRecord&) {
    if (++transitions == 25) remote->debug_kill_workers(true);
  });
  expect_bit_identical(est.run(sys.stimulus()), want);
  // Once degraded, later runs ride the in-process fallback permanently —
  // begin_run() compaction must keep working there too.
  expect_bit_identical(est.run(sys.stimulus()), want);
  EXPECT_FALSE(remote->remote_active());
}

TEST(DistRemote, RpcTelemetryCounts) {
  if (!supported()) GTEST_SKIP() << "no fork/socketpair";
  TelemetryOn telem;
  auto& reg = telemetry::registry();
  telemetry::Counter& rpcs = reg.counter("estimator.hw.gate.remote.dist.rpcs");
  telemetry::Counter& tx =
      reg.counter("estimator.hw.gate.remote.dist.bytes_tx");
  telemetry::Counter& rx =
      reg.counter("estimator.hw.gate.remote.dist.bytes_rx");
  const std::uint64_t rpcs0 = rpcs.value(), tx0 = tx.value(),
                      rx0 = rx.value();

  systems::TcpIpSystem sys(gate_params());
  core::CoEstimator est(&sys.network(), remote_config());
  sys.configure(est);
  est.prepare();
  (void)est.run(sys.stimulus());

  EXPECT_GT(rpcs.value(), rpcs0);
  EXPECT_GT(tx.value(), tx0);
  EXPECT_GT(rx.value(), rx0);
}

}  // namespace
}  // namespace socpower::dist
