// Wire-protocol round-trip and rejection tests.
//
// The dist protocol carries the co-estimation bit-identity contract over a
// byte stream, so the round-trip checks compare doubles by IEEE-754 bit
// pattern (std::bit_cast), not by value: NaN payloads, denormals and
// negative zero must survive encoding exactly. The rejection tests feed
// every strict prefix of a valid frame (truncation) and a frame with
// trailing garbage to each decoder — decoders must fail cleanly rather than
// read past the end or accept a short frame.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "dist/wire.hpp"

namespace socpower::dist {
namespace {

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Doubles with awkward representations, cycled into the fuzzed payloads.
double tricky_double(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return -std::numeric_limits<double>::quiet_NaN();
    case 2: return std::numeric_limits<double>::denorm_min();
    case 3: return -std::numeric_limits<double>::denorm_min();
    case 4: return -0.0;
    case 5: return std::numeric_limits<double>::infinity();
    case 6: return -std::numeric_limits<double>::infinity();
    default: return std::bit_cast<double>(rng());  // arbitrary bit pattern
  }
}

cfsm::ReactionInputs random_inputs(std::mt19937_64& rng) {
  cfsm::ReactionInputs in;
  const unsigned n = rng() % 5;
  for (unsigned i = 0; i < n; ++i)
    in.set(static_cast<cfsm::EventId>(rng() % 16),
           static_cast<std::int32_t>(rng()));
  return in;
}

cfsm::CfsmState random_state(std::mt19937_64& rng) {
  cfsm::CfsmState st;
  const unsigned n = rng() % 6;
  for (unsigned i = 0; i < n; ++i)
    st.vars.push_back(static_cast<std::int32_t>(rng()));
  return st;
}

std::vector<cfsm::NodeId> random_trace(std::mt19937_64& rng) {
  std::vector<cfsm::NodeId> t;
  const unsigned n = rng() % 7;
  for (unsigned i = 0; i < n; ++i)
    t.push_back(static_cast<cfsm::NodeId>(rng() % 1000));
  return t;
}

ChunkPayload random_chunk(std::mt19937_64& rng) {
  ChunkPayload c;
  c.task = static_cast<cfsm::CfsmId>(rng() % 8);
  c.base_paths = static_cast<std::uint32_t>(rng() % 100);
  const unsigned np = rng() % 4;
  for (unsigned i = 0; i < np; ++i) c.new_paths.push_back(random_trace(rng));
  const unsigned ne = rng() % 5;
  for (unsigned i = 0; i < ne; ++i) {
    ChunkPayload::Entry e;
    e.time = rng();
    e.inputs = random_inputs(rng);
    e.path = (rng() % 4 == 0) ? cfsm::kNoPath
                              : static_cast<cfsm::PathId>(rng() % 50);
    e.pre = random_state(rng);
    c.entries.push_back(e);
  }
  return c;
}

void expect_inputs_equal(const cfsm::ReactionInputs& a,
                         const cfsm::ReactionInputs& b) {
  EXPECT_EQ(a.all(), b.all());
}

void expect_chunks_equal(const ChunkPayload& a, const ChunkPayload& b) {
  EXPECT_EQ(a.task, b.task);
  EXPECT_EQ(a.base_paths, b.base_paths);
  EXPECT_EQ(a.new_paths, b.new_paths);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].time, b.entries[i].time);
    expect_inputs_equal(a.entries[i].inputs, b.entries[i].inputs);
    EXPECT_EQ(a.entries[i].path, b.entries[i].path);
    EXPECT_EQ(a.entries[i].pre.vars, b.entries[i].pre.vars);
  }
}

TEST(DistWire, PrimitiveDoublesRoundTripBitExact) {
  for (const double d :
       {std::numeric_limits<double>::quiet_NaN(), -0.0, 0.0,
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(), 1.0, -1.5e-300}) {
    WireWriter w;
    w.put_f64(d);
    WireReader r(w.bytes());
    const double back = r.get_f64();
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
    EXPECT_TRUE(bits_equal(d, back))
        << std::bit_cast<std::uint64_t>(d) << " vs "
        << std::bit_cast<std::uint64_t>(back);
  }
}

TEST(DistWire, FuzzedRoundTripsFiveSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    SCOPED_TRACE(seed);
    std::mt19937_64 rng(seed);
    for (int iter = 0; iter < 50; ++iter) {
      // Chunk payload.
      {
        const ChunkPayload c = random_chunk(rng);
        WireWriter w;
        put_chunk(w, c);
        WireReader r(w.bytes());
        ChunkPayload back;
        ASSERT_TRUE(get_chunk(r, &back));
        ASSERT_TRUE(r.at_end());
        expect_chunks_equal(c, back);
      }
      // Cost payload.
      {
        CostPayload c;
        c.task = static_cast<cfsm::CfsmId>(rng() % 8);
        c.path = static_cast<cfsm::PathId>(rng() % 50);
        c.now = rng();
        c.inputs = random_inputs(rng);
        for (unsigned i = 0; i < rng() % 4; ++i)
          c.reaction.emissions.push_back(
              {static_cast<cfsm::EventId>(rng() % 16),
               static_cast<std::int32_t>(rng())});
        c.reaction.trace = random_trace(rng);
        c.post_state = random_state(rng);
        WireWriter w;
        put_cost(w, c);
        WireReader r(w.bytes());
        CostPayload back;
        ASSERT_TRUE(get_cost(r, &back));
        ASSERT_TRUE(r.at_end());
        EXPECT_EQ(c.task, back.task);
        EXPECT_EQ(c.path, back.path);
        EXPECT_EQ(c.now, back.now);
        expect_inputs_equal(c.inputs, back.inputs);
        ASSERT_EQ(c.reaction.emissions.size(), back.reaction.emissions.size());
        for (std::size_t i = 0; i < c.reaction.emissions.size(); ++i) {
          EXPECT_EQ(c.reaction.emissions[i].event,
                    back.reaction.emissions[i].event);
          EXPECT_EQ(c.reaction.emissions[i].value,
                    back.reaction.emissions[i].value);
        }
        EXPECT_EQ(c.reaction.trace, back.reaction.trace);
        EXPECT_EQ(c.post_state.vars, back.post_state.vars);
      }
      // Flush result with tricky energies.
      {
        core::ComponentEstimator::FlushResult fr;
        fr.gate_cycles = rng();
        for (unsigned i = 0; i < rng() % 6; ++i)
          fr.entries.push_back({rng(), static_cast<cfsm::PathId>(rng() % 50),
                                tricky_double(rng)});
        WireWriter w;
        put_flush_result(w, fr);
        WireReader r(w.bytes());
        core::ComponentEstimator::FlushResult back;
        ASSERT_TRUE(get_flush_result(r, &back));
        ASSERT_TRUE(r.at_end());
        EXPECT_EQ(fr.gate_cycles, back.gate_cycles);
        ASSERT_EQ(fr.entries.size(), back.entries.size());
        for (std::size_t i = 0; i < fr.entries.size(); ++i) {
          EXPECT_EQ(fr.entries[i].time, back.entries[i].time);
          EXPECT_EQ(fr.entries[i].path, back.entries[i].path);
          EXPECT_TRUE(bits_equal(fr.entries[i].energy, back.entries[i].energy));
        }
      }
      // Transition cost.
      {
        core::TransitionCost c{tricky_double(rng), tricky_double(rng),
                               rng() % 2 == 0};
        WireWriter w;
        put_transition_cost(w, c);
        WireReader r(w.bytes());
        core::TransitionCost back;
        ASSERT_TRUE(get_transition_cost(r, &back));
        ASSERT_TRUE(r.at_end());
        EXPECT_TRUE(bits_equal(c.cycles, back.cycles));
        EXPECT_TRUE(bits_equal(c.energy, back.energy));
        EXPECT_EQ(c.simulated, back.simulated);
      }
      // Run results.
      {
        core::RunResults res;
        res.total_energy = tricky_double(rng);
        for (unsigned i = 0; i < rng() % 4; ++i)
          res.process_energy.push_back(tricky_double(rng));
        res.hw_energy = tricky_double(rng);
        res.end_time = rng();
        res.gate_sim_cycles = rng();
        res.icache.accesses = rng();
        res.icache.energy = tricky_double(rng);
        res.bus_totals.transfers = rng();
        res.bus_totals.energy = tricky_double(rng);
        res.wall_seconds = tricky_double(rng);
        res.truncated = rng() % 2 == 0;
        WireWriter w;
        put_run_results(w, res);
        WireReader r(w.bytes());
        core::RunResults back;
        ASSERT_TRUE(get_run_results(r, &back));
        ASSERT_TRUE(r.at_end());
        EXPECT_TRUE(bits_equal(res.total_energy, back.total_energy));
        ASSERT_EQ(res.process_energy.size(), back.process_energy.size());
        for (std::size_t i = 0; i < res.process_energy.size(); ++i)
          EXPECT_TRUE(
              bits_equal(res.process_energy[i], back.process_energy[i]));
        EXPECT_TRUE(bits_equal(res.hw_energy, back.hw_energy));
        EXPECT_EQ(res.end_time, back.end_time);
        EXPECT_EQ(res.gate_sim_cycles, back.gate_sim_cycles);
        EXPECT_EQ(res.icache.accesses, back.icache.accesses);
        EXPECT_TRUE(bits_equal(res.icache.energy, back.icache.energy));
        EXPECT_EQ(res.bus_totals.transfers, back.bus_totals.transfers);
        EXPECT_TRUE(bits_equal(res.bus_totals.energy, back.bus_totals.energy));
        EXPECT_TRUE(bits_equal(res.wall_seconds, back.wall_seconds));
        EXPECT_EQ(res.truncated, back.truncated);
      }
      // Per-run knobs.
      {
        PerRunKnobs k;
        k.sync_spin = static_cast<unsigned>(rng());
        k.hw_reaction_cycles = static_cast<unsigned>(rng() % 100);
        k.verify_lowlevel = rng() % 2 == 0;
        k.hw_reaction_cache = rng() % 2 == 0;
        k.hw_reaction_cache_max_entries = rng();
        k.hw_bit_parallel = rng() % 2 == 0;
        k.hw_packed_lanes = static_cast<unsigned>(1 + rng() % 64);
        WireWriter w;
        put_knobs(w, k);
        WireReader r(w.bytes());
        PerRunKnobs back;
        ASSERT_TRUE(get_knobs(r, &back));
        ASSERT_TRUE(r.at_end());
        EXPECT_EQ(k.sync_spin, back.sync_spin);
        EXPECT_EQ(k.hw_reaction_cycles, back.hw_reaction_cycles);
        EXPECT_EQ(k.verify_lowlevel, back.verify_lowlevel);
        EXPECT_EQ(k.hw_reaction_cache, back.hw_reaction_cache);
        EXPECT_EQ(k.hw_reaction_cache_max_entries,
                  back.hw_reaction_cache_max_entries);
        EXPECT_EQ(k.hw_bit_parallel, back.hw_bit_parallel);
        EXPECT_EQ(k.hw_packed_lanes, back.hw_packed_lanes);
      }
    }
  }
}

TEST(DistWire, TruncatedFramesAreRejected) {
  // A decoder fed any strict prefix of a valid encoding must fail (or at
  // minimum not report a clean full-frame parse). Never crash, never accept.
  std::mt19937_64 rng(42);
  const ChunkPayload c = random_chunk(rng);
  WireWriter w;
  put_chunk(w, c);
  const std::vector<std::uint8_t>& full = w.bytes();
  ASSERT_FALSE(full.empty());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    WireReader r(full.data(), cut);
    ChunkPayload out;
    const bool clean = get_chunk(r, &out) && r.at_end();
    EXPECT_FALSE(clean) << "prefix of length " << cut << " decoded cleanly";
  }

  CostPayload cost;
  cost.inputs = random_inputs(rng);
  cost.reaction.trace = random_trace(rng);
  cost.post_state = random_state(rng);
  WireWriter wc;
  put_cost(wc, cost);
  for (std::size_t cut = 0; cut < wc.bytes().size(); ++cut) {
    WireReader r(wc.bytes().data(), cut);
    CostPayload out;
    EXPECT_FALSE(get_cost(r, &out) && r.at_end());
  }
}

TEST(DistWire, TrailingGarbageIsDetectable) {
  std::mt19937_64 rng(43);
  const ChunkPayload c = random_chunk(rng);
  WireWriter w;
  put_chunk(w, c);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.push_back(0xAB);
  WireReader r(bytes);
  ChunkPayload out;
  // The payload itself still parses, but at_end() exposes the extra byte —
  // full-frame consumers require both.
  EXPECT_TRUE(get_chunk(r, &out));
  EXPECT_FALSE(r.at_end());
}

TEST(DistWire, CorruptLengthFieldDoesNotAllocate) {
  // A frame claiming 2^32-1 entries must be rejected by the element-size
  // sanity bound before any giant reserve happens.
  WireWriter w;
  w.put_i32(0);                    // task
  w.put_u32(0);                    // base_paths
  w.put_u32(0xFFFFFFFFu);          // new_paths length: absurd
  WireReader r(w.bytes());
  ChunkPayload out;
  EXPECT_FALSE(get_chunk(r, &out));
}

TEST(DistWire, ExpectsReplyMatchesProtocol) {
  EXPECT_TRUE(expects_reply(MsgType::kCost));
  EXPECT_TRUE(expects_reply(MsgType::kFlushUnit));
  EXPECT_TRUE(expects_reply(MsgType::kSeparateStep));
  EXPECT_TRUE(expects_reply(MsgType::kStats));
  EXPECT_TRUE(expects_reply(MsgType::kEvalPoint));
  EXPECT_FALSE(expects_reply(MsgType::kBeginRun));
  EXPECT_FALSE(expects_reply(MsgType::kEnqueueChunk));
  EXPECT_FALSE(expects_reply(MsgType::kShutdown));
  EXPECT_FALSE(expects_reply(MsgType::kReply));
}

}  // namespace
}  // namespace socpower::dist
