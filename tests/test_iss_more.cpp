// Additional ISS coverage: branch matrix (every comparison, both outcomes),
// call/return conventions, byte-access sign semantics, energy accounting
// invariants, and run-budget behavior.
#include <gtest/gtest.h>

#include "iss/assembler.hpp"
#include "iss/iss.hpp"

namespace socpower::iss {
namespace {

struct BranchCase {
  const char* mnemonic;
  std::int32_t a;
  std::int32_t b;
  bool taken;
};

class BranchMatrix : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchMatrix, OutcomeFollowsComparison) {
  const BranchCase& c = GetParam();
  char src[256];
  std::snprintf(src, sizeof src, R"(
    movi r4, %d
    movi r5, %d
    %s r4, r5, taken
    nop
    movi r6, 1      ; fall-through marker
  taken:
    halt
  )", c.a, c.b, c.mnemonic);
  Iss iss(InstructionPowerModel::sparclite(), {});
  const AsmResult prog = assemble(src, 0x10);
  ASSERT_TRUE(prog.ok()) << prog.error;
  iss.load_program(prog.program, 0x10);
  iss.set_pc(0x10);
  const RunResult r = iss.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(iss.reg(6), c.taken ? 0 : 1)
      << c.mnemonic << " " << c.a << "," << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllComparisons, BranchMatrix,
    ::testing::Values(
        BranchCase{"beq", 5, 5, true}, BranchCase{"beq", 5, 6, false},
        BranchCase{"bne", 5, 6, true}, BranchCase{"bne", 5, 5, false},
        BranchCase{"blt", -1, 0, true}, BranchCase{"blt", 0, 0, false},
        BranchCase{"blt", 1, -1, false}, BranchCase{"bge", 0, 0, true},
        BranchCase{"bge", -2, -1, false}, BranchCase{"bge", 7, -7, true}),
    [](const auto& info) {
      return std::string(info.param.mnemonic) + "_" +
             (info.param.taken ? "taken" : "nottaken") + "_" +
             std::to_string(info.index);
    });

TEST(IssMore, NestedCallsPreserveDiscipline) {
  // Manual link-register save: outer uses r30, saves it across the inner
  // call in r29.
  Iss iss(InstructionPowerModel::sparclite(), {});
  const AsmResult prog = assemble(R"(
    jal r30, outer
    nop
    movi r10, 1
    halt
  outer:
    or   r29, r30, r0
    jal  r30, inner
    nop
    movi r11, 2
    jr   r29
    nop
  inner:
    movi r12, 3
    jr   r30
    nop
  )", 0x10);
  ASSERT_TRUE(prog.ok()) << prog.error;
  iss.load_program(prog.program, 0x10);
  iss.set_pc(0x10);
  const RunResult r = iss.run();
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(iss.reg(10), 1);
  EXPECT_EQ(iss.reg(11), 2);
  EXPECT_EQ(iss.reg(12), 3);
}

TEST(IssMore, ByteAccessSignBehavior) {
  Iss iss(InstructionPowerModel::sparclite(), {});
  const AsmResult prog = assemble(R"(
    movi r4, 0x300
    movi r5, -1        ; 0xFFFFFFFF
    sb   r5, 0(r4)
    lb   r6, 0(r4)     ; sign-extends to -1
    lbu  r7, 0(r4)     ; zero-extends to 255
    movi r8, 0x17F
    sb   r8, 1(r4)     ; stores low byte 0x7F
    lb   r9, 1(r4)
    halt
  )", 0x10);
  ASSERT_TRUE(prog.ok()) << prog.error;
  iss.load_program(prog.program, 0x10);
  iss.set_pc(0x10);
  ASSERT_TRUE(iss.run().halted);
  EXPECT_EQ(iss.reg(6), -1);
  EXPECT_EQ(iss.reg(7), 255);
  EXPECT_EQ(iss.reg(9), 0x7F);
}

TEST(IssMore, EnergyIsAdditiveAcrossInvocations) {
  // Running A;HALT then B;HALT must cost the same as measuring each alone
  // (per-invocation circuit-state reset makes invocations independent).
  Iss iss(InstructionPowerModel::sparclite(), {});
  const AsmResult a = assemble("add r4, r5, r6\n halt", 0x10);
  const AsmResult b = assemble("mul r7, r8, r9\n halt", 0x40);
  iss.load_program(a.program, 0x10);
  iss.load_program(b.program, 0x40);
  iss.reset_cpu();
  iss.set_pc(0x10);
  const Joules ea = iss.run().energy;
  iss.reset_cpu();
  iss.set_pc(0x40);
  const Joules eb = iss.run().energy;
  iss.reset_cpu();
  iss.set_pc(0x10);
  const Joules ea2 = iss.run().energy;
  EXPECT_DOUBLE_EQ(ea, ea2);
  EXPECT_NE(ea, eb);
}

TEST(IssMore, StallCyclesCountedSeparately) {
  IssConfig cfg;
  cfg.pipeline_fill_cycles = 2;
  Iss iss(InstructionPowerModel::sparclite(), cfg);
  const AsmResult prog = assemble(R"(
    movi r4, 0x200
    lw   r5, 0(r4)
    add  r6, r5, r5
    lw   r7, 4(r4)
    add  r8, r7, r7
    halt
  )", 0x10);
  ASSERT_TRUE(prog.ok());
  iss.load_program(prog.program, 0x10);
  iss.set_pc(0x10);
  const RunResult r = iss.run();
  EXPECT_EQ(r.stall_cycles, 2u + 2u);  // fill + two load-use bubbles
  EXPECT_EQ(r.instructions, 6u);
  EXPECT_EQ(r.cycles, 2u + 6u + 2u);
}

TEST(IssMore, ZeroBudgetRunsNothing) {
  Iss iss(InstructionPowerModel::sparclite(), {});
  const AsmResult prog = assemble("halt", 0x10);
  iss.load_program(prog.program, 0x10);
  iss.set_pc(0x10);
  const RunResult r = iss.run(1);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.instructions, 1u);
}

TEST(IssMore, PcTraceMatchesExecutedInstructions) {
  Iss iss(InstructionPowerModel::sparclite(), {});
  const AsmResult prog = assemble(R"(
    movi r4, 2
  loop:
    subi r4, r4, 1
    bne  r4, r0, loop
    nop
    halt
  )", 0x20);
  ASSERT_TRUE(prog.ok());
  iss.load_program(prog.program, 0x20);
  iss.set_pc(0x20);
  std::vector<std::uint32_t> trace;
  iss.set_pc_trace(&trace);
  const RunResult r = iss.run();
  iss.set_pc_trace(nullptr);
  EXPECT_EQ(trace.size(), r.instructions);
  EXPECT_EQ(trace.front(), 0x20u * kInstrBytes);
  // The loop body address appears twice (two iterations).
  const std::uint32_t body = (0x20u + 1) * kInstrBytes;
  EXPECT_EQ(std::count(trace.begin(), trace.end(), body), 2);
}

}  // namespace
}  // namespace socpower::iss
