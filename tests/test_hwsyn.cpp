// Hardware synthesis tests: word-level RTL operator correctness against the
// scalar reference semantics (property sweeps), and full s-graph -> netlist
// functional equivalence with the behavioral model on randomized inputs.
#include <gtest/gtest.h>

#include "cfsm/cfsm.hpp"
#include "hw/gatesim.hpp"
#include "hwsyn/rtl.hpp"
#include "hwsyn/synth.hpp"
#include "util/rng.hpp"

namespace socpower::hwsyn {
namespace {

using cfsm::ExprOp;

/// Evaluates a two-input RTL operator circuit for concrete values.
template <typename BuildFn>
std::uint32_t eval_rtl(BuildFn&& build, std::uint32_t x, std::uint32_t y,
                       unsigned width) {
  hw::Netlist nl;
  RtlBuilder rtl(&nl);
  const Word a = rtl.input_word("a", width);
  const Word b = rtl.input_word("b", width);
  const Word out = build(rtl, a, b);
  for (const auto n : out) nl.mark_output(n, "o");
  EXPECT_EQ(nl.validate(), "");
  hw::GateSim sim(&nl);
  sim.set_input_word(0, x, width);
  sim.set_input_word(width, y, width);
  sim.step();
  return sim.read_word(0, static_cast<unsigned>(out.size()));
}

TEST(Rtl, AdderMatchesReference) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    const auto y = static_cast<std::uint32_t>(rng.next());
    const auto got = eval_rtl(
        [](RtlBuilder& r, const Word& a, const Word& b) { return r.add(a, b); },
        x, y, 32);
    EXPECT_EQ(got, x + y);
  }
}

TEST(Rtl, SubtractorMatchesReference) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    const auto y = static_cast<std::uint32_t>(rng.next());
    const auto got = eval_rtl(
        [](RtlBuilder& r, const Word& a, const Word& b) { return r.sub(a, b); },
        x, y, 32);
    EXPECT_EQ(got, x - y);
  }
}

TEST(Rtl, MultiplierMatchesReferenceNarrow) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.below(1 << 16));
    const auto y = static_cast<std::uint32_t>(rng.below(1 << 16));
    const auto got = eval_rtl(
        [](RtlBuilder& r, const Word& a, const Word& b) { return r.mul(a, b); },
        x, y, 16);
    EXPECT_EQ(got, (x * y) & 0xFFFFu);
  }
}

TEST(Rtl, ComparatorsMatchReference) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    const auto y = rng.chance(0.2) ? x : static_cast<std::uint32_t>(rng.next());
    const auto sx = static_cast<std::int32_t>(x);
    const auto sy = static_cast<std::int32_t>(y);
    EXPECT_EQ(eval_rtl(
                  [](RtlBuilder& r, const Word& a, const Word& b) {
                    return Word{r.eq(a, b)};
                  },
                  x, y, 32),
              x == y ? 1u : 0u);
    EXPECT_EQ(eval_rtl(
                  [](RtlBuilder& r, const Word& a, const Word& b) {
                    return Word{r.lt_unsigned(a, b)};
                  },
                  x, y, 32),
              x < y ? 1u : 0u);
    EXPECT_EQ(eval_rtl(
                  [](RtlBuilder& r, const Word& a, const Word& b) {
                    return Word{r.lt_signed(a, b)};
                  },
                  x, y, 32),
              sx < sy ? 1u : 0u);
  }
}

TEST(Rtl, ShiftsAndNegation) {
  const std::uint32_t x = 0x80000001u;
  EXPECT_EQ(eval_rtl([](RtlBuilder& r, const Word& a,
                        const Word&) { return r.shl_const(a, 4); },
                     x, 0, 32),
            x << 4);
  EXPECT_EQ(eval_rtl([](RtlBuilder& r, const Word& a,
                        const Word&) { return r.shr_arith_const(a, 4); },
                     x, 0, 32),
            static_cast<std::uint32_t>(static_cast<std::int32_t>(x) >> 4));
  EXPECT_EQ(eval_rtl([](RtlBuilder& r, const Word& a,
                        const Word&) { return r.neg(a); },
                     17, 0, 32),
            static_cast<std::uint32_t>(-17));
}

TEST(Rtl, MuxSelectsOperand) {
  hw::Netlist nl;
  RtlBuilder rtl(&nl);
  const Word a = rtl.constant(0xAAAA, 16);
  const Word b = rtl.constant(0x5555, 16);
  const NetId sel = nl.add_primary_input("sel");
  const Word out = rtl.mux(sel, a, b);
  for (const auto n : out) nl.mark_output(n, "o");
  hw::GateSim sim(&nl);
  sim.set_input(0, true);
  sim.step();
  EXPECT_EQ(sim.read_word(0, 16), 0xAAAAu);
  sim.set_input(0, false);
  sim.step();
  EXPECT_EQ(sim.read_word(0, 16), 0x5555u);
}

// ---------------------------------------------------------------------------
// Full-CFSM synthesis equivalence.

struct TestCfsm {
  cfsm::Network net;
  cfsm::Cfsm& c;
  cfsm::EventId trig;
  cfsm::EventId aux;
  cfsm::EventId out;

  TestCfsm()
      : c(net.add_cfsm("t")), trig(net.declare_event("TRIG")),
        aux(net.declare_event("AUX")), out(net.declare_event("OUT")) {
    c.add_input(trig);
    c.add_input(aux);
    c.add_output(out);
  }
};

/// Steps the synthesized netlist alongside the interpreter for a sequence of
/// stimuli and checks variables + effective emissions after every reaction.
void check_hw_equivalence(TestCfsm& t,
                          const std::vector<cfsm::ReactionInputs>& seq) {
  const HwImage img = synthesize_cfsm(t.c);
  hw::GateSim sim(img.netlist.get());
  cfsm::CfsmState st = t.c.make_state();
  for (const auto& in : seq) {
    const cfsm::Reaction r = t.c.react(in, st);
    stage_hw_reaction(sim, img, in);
    sim.step();
    for (std::size_t v = 0; v < st.vars.size(); ++v)
      EXPECT_EQ(read_hw_var(sim, img, static_cast<cfsm::VarId>(v)),
                st.vars[v]);
    // Effective (per-event, last-wins) emissions must match.
    const auto hw_em = read_hw_emissions(sim, img);
    std::vector<cfsm::EmittedEvent> expect;
    for (const auto& em : r.emissions) {
      bool found = false;
      for (auto& e : expect)
        if (e.event == em.event) {
          e.value = em.value;
          found = true;
        }
      if (!found) expect.push_back(em);
    }
    ASSERT_EQ(hw_em.size(), expect.size());
    for (const auto& em : expect) {
      bool matched = false;
      for (const auto& h : hw_em)
        if (h.event == em.event && h.value == em.value) matched = true;
      EXPECT_TRUE(matched) << "event " << em.event;
    }
  }
}

TEST(HwSyn, CounterAccumulates) {
  TestCfsm t;
  const auto v = t.c.add_var("cnt", 5);
  auto& g = t.c.graph();
  auto& a = t.c.arena();
  g.set_root(g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.event_value(t.trig)),
      g.add_end()));
  std::vector<cfsm::ReactionInputs> seq;
  for (const std::int32_t x : {1, 10, -4, 100}) {
    cfsm::ReactionInputs in;
    in.set(t.trig, x);
    seq.push_back(in);
  }
  check_hw_equivalence(t, seq);
}

TEST(HwSyn, BranchingAndEmission) {
  TestCfsm t;
  const auto v = t.c.add_var("v");
  auto& g = t.c.graph();
  auto& a = t.c.arena();
  const auto end = g.add_end();
  const auto yes = g.add_emit(
      t.out, a.binary(ExprOp::kMul, a.event_value(t.trig), a.constant(3)),
      g.add_assign(v, a.constant(1), end));
  const auto no = g.add_assign(v, a.constant(0), end);
  g.set_root(g.add_test(
      a.binary(ExprOp::kGe, a.event_value(t.trig), a.constant(10)), yes, no));
  std::vector<cfsm::ReactionInputs> seq;
  for (const std::int32_t x : {5, 10, 9, 100, -1}) {
    cfsm::ReactionInputs in;
    in.set(t.trig, x);
    seq.push_back(in);
  }
  check_hw_equivalence(t, seq);
}

TEST(HwSyn, EventPresenceSteersBothBranches) {
  TestCfsm t;
  const auto v = t.c.add_var("v");
  auto& g = t.c.graph();
  auto& a = t.c.arena();
  const auto end = g.add_end();
  const auto got_aux = g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.event_value(t.aux)), end);
  const auto no_aux = g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.constant(1)), end);
  g.set_root(g.add_test(a.event_present(t.aux), got_aux, no_aux));
  std::vector<cfsm::ReactionInputs> seq;
  cfsm::ReactionInputs only_trig;
  only_trig.set(t.trig, 0);
  seq.push_back(only_trig);
  cfsm::ReactionInputs both;
  both.set(t.trig, 0);
  both.set(t.aux, 50);
  seq.push_back(both);
  seq.push_back(only_trig);
  check_hw_equivalence(t, seq);
}

TEST(HwSyn, SequentialAssignOverwriteWithinPath) {
  TestCfsm t;
  const auto v = t.c.add_var("v");
  const auto w = t.c.add_var("w");
  auto& g = t.c.graph();
  auto& a = t.c.arena();
  const auto end = g.add_end();
  // v := 7; w := v + 1 (must see 7); v := 9.
  const auto n3 = g.add_assign(v, a.constant(9), end);
  const auto n2 = g.add_assign(
      w, a.binary(ExprOp::kAdd, a.variable(v), a.constant(1)), n3);
  g.set_root(g.add_assign(v, a.constant(7), n2));
  std::vector<cfsm::ReactionInputs> seq(2);
  seq[0].set(t.trig, 0);
  seq[1].set(t.trig, 0);
  check_hw_equivalence(t, seq);
}

TEST(HwSyn, RandomizedEquivalenceSweep) {
  Rng rng(777);
  for (int trial = 0; trial < 12; ++trial) {
    TestCfsm t;
    const int n_vars = 2;
    for (int v = 0; v < n_vars; ++v)
      t.c.add_var("v" + std::to_string(v),
                  static_cast<std::int32_t>(rng.range(-9, 9)));
    auto& g = t.c.graph();
    auto& a = t.c.arena();

    auto rand_expr = [&](auto&& self, int depth) -> cfsm::ExprId {
      if (depth == 0 || rng.chance(0.35)) {
        switch (rng.below(3)) {
          case 0:
            return a.constant(static_cast<std::int32_t>(rng.range(-20, 20)));
          case 1:
            return a.variable(static_cast<cfsm::VarId>(rng.below(n_vars)));
          default:
            return a.event_value(t.trig);
        }
      }
      // HW-synthesizable subset (no div/mod, constant shifts only).
      static const ExprOp ops[] = {ExprOp::kAdd, ExprOp::kSub,
                                   ExprOp::kBitXor, ExprOp::kBitAnd,
                                   ExprOp::kLt, ExprOp::kEq, ExprOp::kGe};
      return a.binary(ops[rng.below(std::size(ops))], self(self, depth - 1),
                      self(self, depth - 1));
    };

    std::vector<cfsm::NodeId> frontier{g.add_end()};
    for (int i = 0; i < 6; ++i) {
      const cfsm::NodeId next = frontier[rng.below(frontier.size())];
      switch (rng.below(3)) {
        case 0:
          frontier.push_back(
              g.add_assign(static_cast<cfsm::VarId>(rng.below(n_vars)),
                           rand_expr(rand_expr, 2), next));
          break;
        case 1:
          frontier.push_back(g.add_emit(t.out, rand_expr(rand_expr, 2), next));
          break;
        default:
          frontier.push_back(g.add_test(
              rand_expr(rand_expr, 2), next,
              frontier[rng.below(frontier.size())]));
          break;
      }
    }
    g.set_root(frontier.back());
    ASSERT_EQ(g.validate(), "");

    std::vector<cfsm::ReactionInputs> seq;
    for (int s = 0; s < 6; ++s) {
      cfsm::ReactionInputs in;
      in.set(t.trig, static_cast<std::int32_t>(rng.range(-100, 100)));
      seq.push_back(in);
    }
    check_hw_equivalence(t, seq);
  }
}

TEST(HwSyn, SyncHwVarsForcesState) {
  TestCfsm t;
  const auto v = t.c.add_var("v");
  auto& g = t.c.graph();
  auto& a = t.c.arena();
  g.set_root(g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.constant(1)), g.add_end()));
  const HwImage img = synthesize_cfsm(t.c);
  hw::GateSim sim(img.netlist.get());
  cfsm::CfsmState st = t.c.make_state();
  st.vars[0] = 41;
  sync_hw_vars(sim, img, st);
  cfsm::ReactionInputs in;
  in.set(t.trig, 0);
  stage_hw_reaction(sim, img, in);
  sim.step();
  EXPECT_EQ(read_hw_var(sim, img, 0), 42);
}

TEST(HwSyn, NarrowDatapathWidth) {
  TestCfsm t;
  const auto v = t.c.add_var("v");
  auto& g = t.c.graph();
  auto& a = t.c.arena();
  g.set_root(g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.event_value(t.trig)),
      g.add_end()));
  const HwImage img = synthesize_cfsm(t.c, /*width=*/8);
  hw::GateSim sim(img.netlist.get());
  cfsm::ReactionInputs in;
  in.set(t.trig, 200);
  stage_hw_reaction(sim, img, in);
  sim.step();
  EXPECT_EQ(read_hw_var(sim, img, 0), 200 & 0xff);  // modulo 2^8 semantics
}

TEST(HwSyn, GateCountScalesWithWidth) {
  TestCfsm t;
  const auto v = t.c.add_var("v");
  auto& g = t.c.graph();
  auto& a = t.c.arena();
  g.set_root(g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.event_value(t.trig)),
      g.add_end()));
  const HwImage wide = synthesize_cfsm(t.c, 32);
  const HwImage narrow = synthesize_cfsm(t.c, 8);
  EXPECT_GT(wide.netlist->gate_count(), narrow.netlist->gate_count());
  EXPECT_EQ(wide.netlist->dff_count(), 32u);
  EXPECT_EQ(narrow.netlist->dff_count(), 8u);
}

}  // namespace
}  // namespace socpower::hwsyn
