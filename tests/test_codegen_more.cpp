// Additional code-generator coverage: block-range bookkeeping, address
// traces over random paths, emission-ring capacity, cross-image layout
// disjointness, and the characterization-template/empty-template contract.
#include <gtest/gtest.h>

#include <set>

#include "cfsm/dsl.hpp"
#include "iss/iss.hpp"
#include "swsyn/codegen.hpp"
#include "util/rng.hpp"

namespace socpower::swsyn {
namespace {

cfsm::Network branching_net() {
  cfsm::Network net;
  const auto r = cfsm::parse_network(R"(
    event T, OUT;
    process p {
      input T;
      output OUT;
      var a = 0, b = 0;
      if (val(T) > 10) {
        a = a + val(T);
        if (a > 100) { emit OUT(a); a = 0; }
      } else if (val(T) > 0) {
        b = b + 1;
      } else {
        a = a - 1;
        b = b - 1;
      }
    }
  )", net);
  EXPECT_TRUE(r.ok()) << r.error;
  return net;
}

TEST(CodegenMore, NodeBlocksPartitionTheImage) {
  cfsm::Network net = branching_net();
  const cfsm::Cfsm& p = net.cfsm(0);
  const SwImage img = compile_cfsm(p, 0x30, 0x900);
  // Every node has a nonempty block after the prologue; blocks do not
  // overlap; together with the prologue they cover the whole image.
  std::set<std::uint32_t> covered;
  for (std::uint32_t w = 0; w < img.prologue_words; ++w) covered.insert(w);
  for (std::size_t n = 0; n < p.graph().node_count(); ++n) {
    const auto& [b, e] = img.node_block[n];
    EXPECT_LT(b, e) << "node " << n;
    for (std::uint32_t w = b; w < e; ++w) {
      EXPECT_FALSE(covered.count(w)) << "overlap at word " << w;
      covered.insert(w);
    }
  }
  EXPECT_EQ(covered.size(), img.code.size());
}

TEST(CodegenMore, AddressTraceFollowsExecutedPathOnly) {
  cfsm::Network net = branching_net();
  const cfsm::Cfsm& p = net.cfsm(0);
  const SwImage img = compile_cfsm(p, 0x30, 0x900);
  Rng rng(17);
  cfsm::CfsmState st = p.make_state();
  for (int step = 0; step < 20; ++step) {
    cfsm::ReactionInputs in;
    in.set(net.event_id("T"), static_cast<std::int32_t>(rng.range(-20, 60)));
    cfsm::CfsmState before = st;
    const cfsm::Reaction r = p.react(in, st);
    const auto trace = address_trace(img, r.trace);
    // The trace visits exactly the blocks of the executed nodes, in order.
    std::size_t pos = img.prologue_words;  // skip prologue entries
    ASSERT_GE(trace.size(), pos);
    for (const cfsm::NodeId n : r.trace) {
      const auto& [b, e] = img.node_block[static_cast<std::size_t>(n)];
      for (std::uint32_t w = b; w < e; ++w) {
        ASSERT_LT(pos, trace.size());
        EXPECT_EQ(trace[pos], (img.code_base_word + w) * iss::kInstrBytes);
        ++pos;
      }
    }
    EXPECT_EQ(pos, trace.size());
    (void)before;
  }
}

TEST(CodegenMore, EmissionRingHoldsManyEvents) {
  // A path that emits 12 events in one reaction stays within the ring.
  cfsm::Network net;
  const auto trig = net.declare_event("T");
  const auto out = net.declare_event("OUT");
  cfsm::Cfsm& c = net.add_cfsm("p");
  c.add_input(trig);
  c.add_output(out);
  auto& g = c.graph();
  auto& a = c.arena();
  cfsm::NodeId next = g.add_end();
  for (int i = 0; i < 12; ++i)
    next = g.add_emit(out, a.constant(i), next);
  g.set_root(next);

  const SwImage img = compile_cfsm(c, 0x20, 0x800);
  iss::Iss iss(iss::InstructionPowerModel::sparclite(), {});
  iss.load_program(img.code, img.code_base_word);
  cfsm::ReactionInputs in;
  in.set(trig, 0);
  stage_reaction(iss, img, in, c.make_state());
  iss.set_pc(img.code_base_word);
  ASSERT_TRUE(iss.run().halted);
  const auto ems = read_emissions(iss, img);
  ASSERT_EQ(ems.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(ems[static_cast<std::size_t>(i)].value, 11 - i);
}

TEST(CodegenMore, ImagesForDifferentTasksDoNotAlias) {
  cfsm::Network net;
  const auto r = cfsm::parse_network(R"(
    event A, B;
    process one { input A; var x = 1; x = x + 1; }
    process two { input B; var y = 2; y = y * 3; }
  )", net);
  ASSERT_TRUE(r.ok());
  const SwImage i1 = compile_cfsm(net.cfsm(0), 0x20, 0x800);
  const SwImage i2 =
      compile_cfsm(net.cfsm(1), 0x20 + static_cast<std::uint32_t>(i1.code.size()) + 8,
                   0x800 + ((i1.data_bytes + 15) & ~15u));
  // Code regions disjoint.
  EXPECT_LE(i1.code_base_word + i1.code.size(), i2.code_base_word);
  // Data regions disjoint.
  EXPECT_LE(i1.data_base + i1.data_bytes, i2.data_base);
}

TEST(CodegenMore, TemplatesShareTheInSituEmissionShapes) {
  // The characterization contract: op template == harness + the exact glue
  // the in-situ generator emits. Spot-check AEMIT: the template's tail
  // (minus harness and halt) appears verbatim inside a compiled image that
  // emits an event.
  const iss::Program tpl = characterization_template(MacroOp::kAemit);
  ASSERT_GE(tpl.size(), 10u);
  // Template: [movi r1][movi r8][8-op emit seq][halt]
  std::vector<iss::Opcode> seq;
  for (std::size_t i = 2; i + 1 < tpl.size(); ++i) seq.push_back(tpl[i].op);
  ASSERT_EQ(seq.size(), 8u);

  cfsm::Network net;
  const auto rr = cfsm::parse_network(R"(
    event T, OUT;
    process p { input T; output OUT; emit OUT(5); }
  )", net);
  ASSERT_TRUE(rr.ok());
  const SwImage img = compile_cfsm(net.cfsm(0), 0x20, 0x800);
  bool found = false;
  for (std::size_t i = 0; i + seq.size() <= img.code.size(); ++i) {
    bool match = true;
    for (std::size_t k = 0; k < seq.size(); ++k)
      if (img.code[i + k].op != seq[k]) match = false;
    if (match) found = true;
  }
  EXPECT_TRUE(found) << "in-situ AEMIT glue diverged from its template";
}

TEST(CodegenMore, DisassembleImageListsAllBlocks) {
  cfsm::Network net = branching_net();
  const cfsm::Cfsm& p = net.cfsm(0);
  const SwImage img = compile_cfsm(p, 0x30, 0x900);
  const std::string listing = disassemble_image(p, img);
  EXPECT_NE(listing.find("; prologue"), std::string::npos);
  EXPECT_NE(listing.find("(test)"), std::string::npos);
  EXPECT_NE(listing.find("(assign)"), std::string::npos);
  EXPECT_NE(listing.find("(end)"), std::string::npos);
  // One disassembly line per instruction word plus annotations.
  std::size_t insn_lines = 0, pos = 0;
  while ((pos = listing.find("\n  ", pos)) != std::string::npos) {
    ++insn_lines;
    ++pos;
  }
  EXPECT_EQ(insn_lines, img.code.size());
}

TEST(CodegenMore, EmptyTemplateIsJustHalt) {
  const iss::Program e = empty_template();
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].op, iss::Opcode::kHalt);
}

}  // namespace
}  // namespace socpower::swsyn
