// Parallel co-estimation must be bit-identical to serial: the threaded
// explore() and the threaded hardware batch flush reduce their results in a
// deterministic order, so every reported energy is exactly the energy the
// serial path reports, for any thread count and across workload seeds.
#include <gtest/gtest.h>

#include "core/coestimator.hpp"
#include "core/explorer.hpp"
#include "systems/tcpip.hpp"

namespace socpower::core {
namespace {

const std::uint64_t kSeeds[] = {1, 7, 1234};

RunResults run_tcpip(std::uint64_t seed, unsigned hw_flush_threads) {
  systems::TcpIpParams p;
  p.num_packets = 4;
  p.packet_bytes = 64;
  p.ip_check_in_hw = true;  // two ASICs -> two independent flush batches
  p.seed = seed;
  systems::TcpIpSystem sys(p);
  CoEstimatorConfig cfg;
  cfg.hw_flush_threads = hw_flush_threads;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  return est.run(sys.stimulus());
}

TEST(ParallelDeterminism, FlushHwBatchesMatchesSerialExactly) {
  for (const std::uint64_t seed : kSeeds) {
    const RunResults serial = run_tcpip(seed, 1);
    ASSERT_GT(serial.hw_energy, 0.0);
    ASSERT_GT(serial.gate_sim_cycles, 0u);
    for (const unsigned threads : {2u, 4u, 0u}) {
      const RunResults par = run_tcpip(seed, threads);
      EXPECT_EQ(par.total_energy, serial.total_energy) << "seed " << seed;
      EXPECT_EQ(par.hw_energy, serial.hw_energy);
      EXPECT_EQ(par.cpu_energy, serial.cpu_energy);
      EXPECT_EQ(par.bus_energy, serial.bus_energy);
      EXPECT_EQ(par.process_energy, serial.process_energy);
      EXPECT_EQ(par.gate_sim_cycles, serial.gate_sim_cycles);
      EXPECT_EQ(par.end_time, serial.end_time);
    }
  }
}

std::vector<ExplorationPoint> make_points(std::uint64_t seed,
                                          unsigned hw_flush_threads) {
  std::vector<ExplorationPoint> pts;
  for (const unsigned dma : {4u, 16u, 64u}) {
    auto make_run = [=](Acceleration accel) {
      return [=]() {
        systems::TcpIpParams p;
        p.num_packets = 3;
        p.packet_bytes = 32;
        p.dma_block_size = dma;
        p.ip_check_in_hw = true;
        p.seed = seed;
        systems::TcpIpSystem sys(p);
        CoEstimatorConfig cfg;
        cfg.accel = accel;
        cfg.hw_flush_threads = hw_flush_threads;
        CoEstimator est(&sys.network(), cfg);
        sys.configure(est);
        est.prepare();
        return est.run(sys.stimulus());
      };
    };
    pts.push_back({"dma=" + std::to_string(dma),
                   make_run(Acceleration::kMacroModel),
                   make_run(Acceleration::kNone)});
  }
  return pts;
}

TEST(ParallelDeterminism, ExploreMatchesSerialExactly) {
  for (const std::uint64_t seed : kSeeds) {
    const auto serial = explore(make_points(seed, 1), /*verify_top=*/2);
    for (const unsigned threads : {2u, 4u}) {
      // hw_flush_threads > 1 inside a pool worker exercises the nested
      // (inline) path of the pool as well.
      const auto par = explore(make_points(seed, threads), 2,
                               ExploreOptions{.threads = threads});
      ASSERT_EQ(par.ranked.size(), serial.ranked.size());
      for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
        EXPECT_EQ(par.ranked[i].label, serial.ranked[i].label);
        EXPECT_EQ(par.ranked[i].coarse_energy, serial.ranked[i].coarse_energy)
            << "seed " << seed << " entry " << i;
        EXPECT_EQ(par.ranked[i].exact_energy, serial.ranked[i].exact_energy);
        EXPECT_EQ(par.ranked[i].coarse_rank, serial.ranked[i].coarse_rank);
      }
      EXPECT_EQ(par.winner_confirmed, serial.winner_confirmed);
      EXPECT_EQ(par.verification_correlation, serial.verification_correlation);
    }
  }
}

}  // namespace
}  // namespace socpower::core
