// Randomized property test of the grant-level bus scheduler against a
// brute-force cycle-stepped reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "bus/bus_model.hpp"
#include "util/rng.hpp"

namespace socpower::bus {
namespace {

struct RefJob {
  int master;
  int priority;
  std::uint64_t submit;
  std::size_t bytes;
  std::size_t done_bytes = 0;
  std::optional<std::uint64_t> start;
  std::uint64_t end = 0;
  std::uint64_t order = 0;
};

/// Cycle-free reference: walks grant boundaries directly with the same
/// arbitration rule (priority desc, master asc, submission order), one
/// grant at a time.
void reference_schedule(std::vector<RefJob>& jobs, const BusParams& p) {
  std::uint64_t now = 0;
  std::size_t remaining = jobs.size();
  auto pending_at = [&](std::uint64_t t) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const RefJob& j = jobs[i];
      const bool complete =
          j.done_bytes >= j.bytes && j.start.has_value();
      if (!complete && j.submit <= t) out.push_back(i);
    }
    return out;
  };
  while (remaining > 0) {
    auto cand = pending_at(now);
    if (cand.empty()) {
      // Jump to the next submission.
      std::uint64_t nxt = UINT64_MAX;
      for (const RefJob& j : jobs)
        if (!(j.done_bytes >= j.bytes && j.start.has_value()))
          nxt = std::min(nxt, j.submit);
      now = nxt;
      continue;
    }
    std::sort(cand.begin(), cand.end(), [&](std::size_t a, std::size_t b) {
      if (jobs[a].priority != jobs[b].priority)
        return jobs[a].priority > jobs[b].priority;
      if (jobs[a].master != jobs[b].master)
        return jobs[a].master < jobs[b].master;
      return jobs[a].order < jobs[b].order;
    });
    RefJob& j = jobs[cand[0]];
    if (!j.start) j.start = now;
    const std::size_t block =
        std::min<std::size_t>(p.dma_block_size, j.bytes - j.done_bytes);
    now += p.handshake_cycles +
           block * static_cast<std::uint64_t>(p.cycles_per_beat);
    j.done_bytes += block;
    // A zero-byte job completes with its single handshake grant.
    if (j.done_bytes >= j.bytes) {
      j.end = now;
      --remaining;
    }
  }
}

TEST(BusSchedulerProperty, MatchesReferenceOnRandomWorkloads) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    BusParams p;
    p.dma_block_size = static_cast<unsigned>(2 + 2 * rng.below(8));
    p.handshake_cycles = static_cast<unsigned>(1 + rng.below(3));
    const std::size_t n_jobs = 3 + rng.below(10);

    std::vector<RefJob> ref;
    BusScheduler sched(p);
    std::vector<std::pair<BusScheduler::JobId, std::size_t>> ids;
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < n_jobs; ++i) {
      t += rng.below(30);
      RefJob j;
      j.master = static_cast<int>(rng.below(4));
      j.priority = static_cast<int>(rng.below(3));
      j.submit = t;
      j.bytes = rng.below(40);
      j.order = i;
      ref.push_back(j);
    }
    // Submit in time order (as the co-estimation master does).
    for (std::size_t i = 0; i < ref.size(); ++i) {
      BusRequest r;
      r.master = ref[i].master;
      r.priority = ref[i].priority;
      r.data.assign(ref[i].bytes, 0x55);
      ids.emplace_back(sched.submit(ref[i].submit, std::move(r)), i);
    }

    reference_schedule(ref, p);

    std::map<BusScheduler::JobId, BusResult> results;
    while (sched.has_work())
      for (const auto& c : sched.advance(sched.next_boundary()))
        results[c.id] = c.result;

    ASSERT_EQ(results.size(), ref.size()) << "trial " << trial;
    for (const auto& [id, idx] : ids) {
      ASSERT_TRUE(results.count(id));
      const BusResult& got = results[id];
      EXPECT_EQ(got.start, *ref[idx].start)
          << "trial " << trial << " job " << idx;
      EXPECT_EQ(got.end, ref[idx].end)
          << "trial " << trial << " job " << idx;
    }
  }
}

TEST(BusSchedulerProperty, ConservesBytesAndGrants) {
  Rng rng(99);
  BusParams p;
  p.dma_block_size = 8;
  BusScheduler sched(p);
  std::uint64_t total_bytes = 0;
  std::uint64_t expected_grants = 0;
  std::uint64_t t = 0;
  for (int i = 0; i < 50; ++i) {
    const std::size_t bytes = rng.below(50);
    total_bytes += bytes;
    expected_grants += bytes == 0 ? 1 : (bytes + 7) / 8;
    BusRequest r;
    r.data.assign(bytes, static_cast<std::uint8_t>(i));
    r.priority = static_cast<int>(rng.below(4));
    sched.submit(t, std::move(r));
    t += rng.below(20);
  }
  while (sched.has_work()) sched.advance(sched.next_boundary());
  EXPECT_EQ(sched.totals().bytes, total_bytes);
  EXPECT_EQ(sched.totals().grants, expected_grants);
  EXPECT_EQ(sched.totals().transfers, 50u);
}

}  // namespace
}  // namespace socpower::bus
