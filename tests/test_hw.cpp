// Gate-level substrate tests: cell truth tables (parameterized), netlist
// construction/validation, levelization, the event-driven simulator's
// equivalence with full evaluation, toggle counting and energy physics.
#include <gtest/gtest.h>

#include "hw/gatesim.hpp"
#include "hw/netlist.hpp"
#include "hwsyn/rtl.hpp"
#include "util/rng.hpp"

namespace socpower::hw {
namespace {

struct GateCase {
  GateType t;
  bool a, b, c, expect;
};

class GateTruth : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateTruth, Eval) {
  const GateCase& g = GetParam();
  EXPECT_EQ(eval_gate(g.t, g.a, g.b, g.c), g.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, GateTruth,
    ::testing::Values(
        GateCase{GateType::kInv, false, false, false, true},
        GateCase{GateType::kInv, true, false, false, false},
        GateCase{GateType::kBuf, true, false, false, true},
        GateCase{GateType::kAnd2, true, true, false, true},
        GateCase{GateType::kAnd2, true, false, false, false},
        GateCase{GateType::kOr2, false, true, false, true},
        GateCase{GateType::kOr2, false, false, false, false},
        GateCase{GateType::kNand2, true, true, false, false},
        GateCase{GateType::kNor2, false, false, false, true},
        GateCase{GateType::kXor2, true, false, false, true},
        GateCase{GateType::kXor2, true, true, false, false},
        GateCase{GateType::kXnor2, true, true, false, true},
        GateCase{GateType::kMux2, true, false, false, true},   // sel=0 -> a
        GateCase{GateType::kMux2, true, false, true, false},   // sel=1 -> b
        GateCase{GateType::kMux2, false, true, true, true}));

TEST(Netlist, ValidateCatchesUnconnectedDff) {
  Netlist nl;
  nl.add_dff();
  EXPECT_NE(nl.validate().find("unconnected D"), std::string::npos);
}

TEST(Netlist, ValidateCatchesUndrivenInput) {
  Netlist nl;
  const NetId floating = nl.add_net();
  nl.add_gate(GateType::kInv, floating);
  EXPECT_NE(nl.validate().find("no driver"), std::string::npos);
}

TEST(Netlist, LevelizeOrdersDependencies) {
  Netlist nl;
  const NetId a = nl.add_primary_input("a");
  const NetId x = nl.add_gate(GateType::kInv, a);
  const NetId y = nl.add_gate(GateType::kInv, x);
  (void)y;
  std::string err;
  const auto order = nl.levelize(&err);
  EXPECT_TRUE(err.empty());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_LT(order[0], order[1]);
}

TEST(Netlist, DffBreaksCombinationalCycle) {
  // q -> inv -> d(q): legal sequential loop (toggle flop).
  Netlist nl;
  const NetId q = nl.add_dff(false);
  const NetId d = nl.add_gate(GateType::kInv, q);
  nl.connect_dff_d(q, d);
  EXPECT_EQ(nl.validate(), "");
}

TEST(Netlist, FanoutTracking) {
  Netlist nl;
  const NetId a = nl.add_primary_input("a");
  nl.add_gate(GateType::kInv, a);
  nl.add_gate(GateType::kBuf, a);
  EXPECT_EQ(nl.fanout(a), 2u);
}

TEST(Netlist, CapacitanceModel) {
  Netlist nl;
  const TechParams tech = TechParams::generic_250nm();
  const NetId a = nl.add_primary_input("a");
  const NetId x = nl.add_gate(GateType::kXor2, a, nl.const0());
  nl.add_gate(GateType::kInv, x);
  // XOR output: cell cap + 1 fanout of wire cap.
  EXPECT_DOUBLE_EQ(
      nl.net_capacitance(x, tech),
      tech.cell_output_cap_f[static_cast<std::size_t>(GateType::kXor2)] +
          tech.wire_cap_per_fanout_f);
  // Constants cost nothing.
  EXPECT_DOUBLE_EQ(nl.net_capacitance(nl.const0(), tech), 0.0);
}

TEST(GateSim, ToggleFlopAlternates) {
  Netlist nl;
  const NetId q = nl.add_dff(false);
  const NetId d = nl.add_gate(GateType::kInv, q);
  nl.connect_dff_d(q, d);
  nl.mark_output(q, "q");
  GateSim sim(&nl);
  bool expect = false;
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(sim.net_value(q), expect);
    sim.step();
    expect = !expect;
  }
}

TEST(GateSim, NoActivityNoDynamicToggles) {
  Netlist nl;
  const NetId a = nl.add_primary_input("a");
  nl.add_gate(GateType::kInv, a);
  GateSim sim(&nl);
  sim.set_input(0, false);
  sim.step();  // settle
  const CycleResult r = sim.step();  // same input again
  EXPECT_EQ(r.toggles, 0u);
}

TEST(GateSim, EnergyScalesWithVddSquared) {
  auto build = [] {
    Netlist nl;
    const NetId a = nl.add_primary_input("a");
    NetId x = a;
    for (int i = 0; i < 8; ++i) x = nl.add_gate(GateType::kInv, x);
    nl.mark_output(x, "out");
    return nl;
  };
  const Netlist n1 = build();
  const Netlist n2 = build();
  GateSim lo(&n1, TechParams::generic_250nm(),
             ElectricalParams{.vdd_volts = 1.65});
  GateSim hi(&n2, TechParams::generic_250nm(),
             ElectricalParams{.vdd_volts = 3.3});
  lo.set_input(0, true);
  hi.set_input(0, true);
  const Joules el = lo.step().energy;
  const Joules eh = hi.step().energy;
  EXPECT_NEAR(eh / el, 4.0, 1e-9);
}

TEST(GateSim, EventDrivenMatchesFullEvaluation) {
  // Random netlist, random stimuli: toggle counts from the event-driven
  // simulator must equal a brute-force full re-evaluation reference.
  Rng rng(99);
  Netlist nl;
  std::vector<NetId> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(nl.add_primary_input("i"));
  std::vector<NetId> qs;
  for (int i = 0; i < 4; ++i) {
    const NetId q = nl.add_dff(rng.chance(0.5));
    qs.push_back(q);
    pool.push_back(q);
  }
  for (int i = 0; i < 60; ++i) {
    const auto pick = [&] { return pool[rng.below(pool.size())]; };
    static const GateType kinds[] = {GateType::kInv, GateType::kAnd2,
                                     GateType::kOr2, GateType::kXor2,
                                     GateType::kNand2, GateType::kMux2};
    const GateType t = kinds[rng.below(std::size(kinds))];
    NetId out;
    if (gate_arity(t) == 1) out = nl.add_gate(t, pick());
    else if (gate_arity(t) == 2) out = nl.add_gate(t, pick(), pick());
    else out = nl.add_gate(t, pick(), pick(), pick());
    pool.push_back(out);
  }
  for (const NetId q : qs) nl.connect_dff_d(q, pool[rng.below(pool.size())]);
  ASSERT_EQ(nl.validate(), "");

  GateSim sim(&nl);
  // Reference: recompute every net from scratch each cycle.
  std::vector<std::uint8_t> ref(nl.net_count(), 0);
  ref[static_cast<std::size_t>(nl.const1())] = 1;
  for (std::size_t i = 0; i < nl.dffs().size(); ++i)
    ref[static_cast<std::size_t>(nl.dffs()[i].q)] =
        nl.dffs()[i].init ? 1 : 0;
  std::string err;
  const auto topo = nl.levelize(&err);
  auto settle_ref = [&] {
    for (const std::size_t gi : topo) {
      const Gate& g = nl.gates()[gi];
      const bool a = ref[static_cast<std::size_t>(g.in[0])];
      const bool b2 =
          g.in[1] == kNoNet ? false : ref[static_cast<std::size_t>(g.in[1])];
      const bool c =
          g.in[2] == kNoNet ? false : ref[static_cast<std::size_t>(g.in[2])];
      ref[static_cast<std::size_t>(g.out)] = eval_gate(g.type, a, b2, c);
    }
  };
  settle_ref();

  for (int cycle = 0; cycle < 40; ++cycle) {
    std::vector<std::uint8_t> ins;
    for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
      const bool v = rng.chance(0.5);
      ins.push_back(v);
      sim.set_input(i, v);
    }
    sim.step();
    // Reference cycle.
    for (std::size_t i = 0; i < ins.size(); ++i)
      ref[static_cast<std::size_t>(nl.primary_inputs()[i])] = ins[i];
    settle_ref();
    std::vector<std::pair<NetId, bool>> latch;
    for (const Dff& ff : nl.dffs())
      latch.emplace_back(ff.q, ref[static_cast<std::size_t>(ff.d)] != 0);
    for (const auto& [q, v] : latch) ref[static_cast<std::size_t>(q)] = v;
    settle_ref();  // post-latch settle so comparisons use stable values

    // Compare every DFF output and every marked net against the simulator
    // (the sim's combinational nets lag DFF updates until its next step, so
    // compare state nets only).
    for (const Dff& ff : nl.dffs())
      EXPECT_EQ(sim.net_value(ff.q),
                ref[static_cast<std::size_t>(ff.q)] != 0)
          << "cycle " << cycle;
  }
}

TEST(GateSim, ForceNetPropagatesNextStep) {
  Netlist nl;
  const NetId q = nl.add_dff(false);
  const NetId x = nl.add_gate(GateType::kBuf, q);
  nl.connect_dff_d(q, q);  // holds its value
  nl.mark_output(x, "x");
  GateSim sim(&nl);
  sim.step();
  EXPECT_FALSE(sim.net_value(x));
  sim.force_net(q, true);
  sim.step();
  EXPECT_TRUE(sim.net_value(x));
}

TEST(GateSim, ResetRestoresInitialState) {
  Netlist nl;
  const NetId q = nl.add_dff(true);
  const NetId d = nl.add_gate(GateType::kInv, q);
  nl.connect_dff_d(q, d);
  GateSim sim(&nl);
  sim.step();
  sim.step();
  sim.reset();
  EXPECT_TRUE(sim.net_value(q));
}

TEST(GateSim, ClockEnergyChargedPerCycleEvenWhenIdle) {
  Netlist nl;
  const NetId q = nl.add_dff(false);
  nl.connect_dff_d(q, q);
  GateSim sim(&nl);
  const CycleResult r = sim.step();
  EXPECT_GT(r.energy, 0.0);  // the clock tree still switches
  EXPECT_EQ(r.toggles, 0u);
}

TEST(GateSim, ReadWordAssemblesBits) {
  Netlist nl;
  hwsyn::RtlBuilder rtl(&nl);
  const auto w = rtl.constant(0xA5, 8);
  for (unsigned b = 0; b < 8; ++b)
    nl.mark_output(w[b], "w" + std::to_string(b));
  GateSim sim(&nl);
  sim.step();
  EXPECT_EQ(sim.read_word(0, 8), 0xA5u);
}

}  // namespace
}  // namespace socpower::hw
