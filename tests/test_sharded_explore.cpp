// explore_sharded() vs explore() equivalence.
//
// The sharded explorer forks worker processes but feeds the per-point
// results into the exact same two-phase reduction as the serial path, so
// the whole outcome — winner, ranking order, every coarse/exact energy bit,
// the verification correlation — must be EXPECT_EQ-identical. Checked on
// both benchmark systems across three stimulus variants each, plus the
// fault-injection path: a worker that crashes on its first request is
// dropped and its points re-evaluated in the master, with no effect on the
// outcome beyond the fallback telemetry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "dist/wire.hpp"
#include "systems/prodcons.hpp"
#include "systems/tcpip.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace socpower::core {
namespace {

/// TCP/IP design points: sweep the DMA block size, coarse = macro-model,
/// exact = full co-simulation. `seed` varies the stimulus.
std::vector<ExplorationPoint> tcpip_points(unsigned seed) {
  std::vector<ExplorationPoint> pts;
  for (const unsigned dma : {4u, 8u, 16u, 32u, 64u}) {
    auto make_run = [dma, seed](bool exact) {
      return [dma, seed, exact] {
        systems::TcpIpSystem sys({.num_packets = 3,
                                  .packet_bytes = 32,
                                  .dma_block_size = dma,
                                  .seed = seed});
        CoEstimatorConfig cfg;
        if (!exact) cfg.accel = Acceleration::kMacroModel;
        CoEstimator est(&sys.network(), cfg);
        sys.configure(est);
        est.prepare();
        return est.run(sys.stimulus());
      };
    };
    ExplorationPoint p;
    p.label = "dma=" + std::to_string(dma) + "/seed=" + std::to_string(seed);
    p.run_coarse = make_run(false);
    p.run_exact = make_run(true);
    pts.push_back(std::move(p));
  }
  return pts;
}

/// Producer/consumer design points: sweep the timer tick period (the
/// timing-sensitivity knob); `variant` varies the start gap.
std::vector<ExplorationPoint> prodcons_points(unsigned variant) {
  std::vector<ExplorationPoint> pts;
  for (const unsigned tick : {32u, 64u, 128u}) {
    auto make_run = [tick, variant](bool exact) {
      return [tick, variant, exact] {
        systems::ProdConsSystem sys(
            {.num_packets = 4,
             .bytes_per_packet = 8,
             .tick_period = static_cast<sim::SimTime>(tick),
             .start_gap = static_cast<sim::SimTime>(2 + variant)});
        CoEstimatorConfig cfg;
        if (!exact) cfg.accel = Acceleration::kCaching;
        CoEstimator est(&sys.network(), cfg);
        sys.configure(est);
        est.prepare();
        return est.run(sys.stimulus(20000));
      };
    };
    ExplorationPoint p;
    p.label =
        "tick=" + std::to_string(tick) + "/v=" + std::to_string(variant);
    p.run_coarse = make_run(false);
    p.run_exact = make_run(true);
    pts.push_back(std::move(p));
  }
  return pts;
}

/// Full-outcome equality, energies compared bit-for-bit. Wall-clock fields
/// (coarse_seconds/exact_seconds) are excluded: where the evaluation ran
/// changes timing, never results.
void expect_outcomes_equal(const ExplorationOutcome& a,
                           const ExplorationOutcome& b) {
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.ranked[i].label, b.ranked[i].label);
    EXPECT_EQ(a.ranked[i].coarse_energy, b.ranked[i].coarse_energy);
    EXPECT_EQ(a.ranked[i].exact_energy, b.ranked[i].exact_energy);
    EXPECT_EQ(a.ranked[i].coarse_rank, b.ranked[i].coarse_rank);
  }
  EXPECT_EQ(a.winner_confirmed, b.winner_confirmed);
  EXPECT_EQ(a.verification_correlation, b.verification_correlation);
}

TEST(ShardedExplore, MatchesSerialOnTcpip) {
  if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
  for (const unsigned seed : {3u, 7u, 11u}) {
    SCOPED_TRACE(seed);
    const auto pts = tcpip_points(seed);
    const ExplorationOutcome serial = explore(pts, /*verify_top=*/2);
    const ExplorationOutcome sharded =
        explore_sharded(pts, /*verify_top=*/2, {.workers = 3});
    expect_outcomes_equal(serial, sharded);
  }
}

TEST(ShardedExplore, MatchesSerialOnProdcons) {
  if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
  for (const unsigned variant : {0u, 1u, 2u}) {
    SCOPED_TRACE(variant);
    const auto pts = prodcons_points(variant);
    const ExplorationOutcome serial = explore(pts, /*verify_top=*/2);
    const ExplorationOutcome sharded =
        explore_sharded(pts, /*verify_top=*/2, {.workers = 2});
    expect_outcomes_equal(serial, sharded);
  }
}

TEST(ShardedExplore, CrashedWorkerFallsBackToMaster) {
  if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
  telemetry::set_enabled(true, false);
  auto& reg = telemetry::registry();
  telemetry::Counter& fallbacks = reg.counter("dist.fallbacks");
  telemetry::Counter& fallback_points =
      reg.counter("explore.sharded.fallback_points");
  const std::uint64_t f0 = fallbacks.value();
  const std::uint64_t p0 = fallback_points.value();

  const auto pts = tcpip_points(/*seed=*/7);
  const ExplorationOutcome serial = explore(pts, /*verify_top=*/2);
  ShardedExploreOptions opt;
  opt.workers = 3;
  opt.debug_crash_worker = 0;  // shard 0 dies on its first request
  const ExplorationOutcome sharded = explore_sharded(pts, 2, opt);
  telemetry::set_enabled(false, false);

  expect_outcomes_equal(serial, sharded);
  EXPECT_GE(fallbacks.value(), f0 + 1);
  // Shard 0 owned points {0, 3} of 5 in the coarse phase alone.
  EXPECT_GE(fallback_points.value(), p0 + 2);
}

TEST(ShardedExplore, SingleWorkerDegeneratesToSerial) {
  const auto pts = prodcons_points(0);
  const ExplorationOutcome serial = explore(pts, /*verify_top=*/1);
  const ExplorationOutcome one =
      explore_sharded(pts, /*verify_top=*/1, {.workers = 1});
  expect_outcomes_equal(serial, one);
}

}  // namespace
}  // namespace socpower::core
