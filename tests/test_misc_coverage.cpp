// Consolidated coverage: full-ISA encode/decode sweep with randomized
// fields, event-driven gate-sim efficiency, narrow bus data widths, DSL
// corner shapes, and technology-parameter plumbing.
#include <gtest/gtest.h>

#include "bus/bus_model.hpp"
#include "cfsm/dsl.hpp"
#include "core/coestimator.hpp"
#include "hw/gatesim.hpp"
#include "hwsyn/rtl.hpp"
#include "iss/assembler.hpp"
#include "util/rng.hpp"

namespace socpower {
namespace {

TEST(IsaSweep, EncodeDecodeRoundTripsEveryOpcodeRandomized) {
  Rng rng(606);
  for (std::size_t op = 0; op < iss::kNumOpcodes; ++op) {
    for (int trial = 0; trial < 20; ++trial) {
      iss::Instruction ins;
      ins.op = static_cast<iss::Opcode>(op);
      ins.rd = static_cast<std::uint8_t>(rng.below(32));
      ins.rs1 = static_cast<std::uint8_t>(rng.below(32));
      ins.rs2 = static_cast<std::uint8_t>(rng.below(32));
      if (ins.op == iss::Opcode::kJ || ins.op == iss::Opcode::kJal)
        ins.imm = static_cast<std::int32_t>(rng.below(1 << 26));
      else
        ins.imm = static_cast<std::int32_t>(rng.range(-32768, 32767));
      const iss::Instruction back = iss::decode(iss::encode(ins));
      // Round-trip preserves exactly the fields the format encodes; compare
      // via re-encoding (canonical form).
      EXPECT_EQ(iss::encode(back), iss::encode(ins))
          << iss::disassemble(ins);
      EXPECT_EQ(back.op, ins.op);
    }
  }
}

TEST(GateSimEfficiency, EventDrivenSkipsQuietLogic) {
  // A wide design where only one small slice toggles: the event-driven
  // simulator must evaluate far fewer gates than gates * cycles.
  hw::Netlist nl;
  hwsyn::RtlBuilder rtl(&nl);
  const auto live = rtl.input_word("live", 8);
  const auto quiet = rtl.input_word("quiet", 8);
  auto acc_live = rtl.reg_word(0, 8);
  auto acc_quiet = rtl.reg_word(0, 8);
  rtl.connect_reg(acc_live, rtl.add(acc_live, live));
  rtl.connect_reg(acc_quiet, rtl.add(acc_quiet, quiet));
  hw::GateSim sim(&nl);
  Rng rng(8);
  const int cycles = 200;
  for (int c = 0; c < cycles; ++c) {
    sim.set_input_word(0, static_cast<std::uint32_t>(rng.below(256)), 8);
    sim.set_input_word(8, 0, 8);  // the quiet half never changes
    sim.step();
  }
  const auto evals = sim.gates_evaluated();
  const auto upper =
      static_cast<std::uint64_t>(nl.gate_count()) * cycles;
  EXPECT_LT(evals, upper * 7 / 10) << "event-driven evaluation ineffective";
}

TEST(BusNarrowData, FourBitBusMasksActivityAndEnergy) {
  bus::BusParams p;
  p.data_bits = 4;
  p.line_cap_f = 1e-9;
  bus::BusModel narrow(p);
  p.data_bits = 8;
  bus::BusModel wide(p);
  // 0xF0 on a 4-bit bus carries only the low nibble (0x0): zero toggles
  // against the idle 0 state; on an 8-bit bus the high nibble toggles.
  bus::BusRequest r;
  r.data = {0xF0};
  const auto rn = narrow.transfer(0, r);
  const auto rw = wide.transfer(0, r);
  EXPECT_EQ(narrow.totals().data_toggles, 0u);
  EXPECT_EQ(wide.totals().data_toggles, 4u);
  EXPECT_LT(rn.energy, rw.energy);
}

TEST(DslCorners, EmptyProcessAndDeepElseIfChain) {
  cfsm::Network net;
  const auto r = cfsm::parse_network(R"(
    event T, OUT;
    process idle { input T; }      // empty body: reacts, does nothing
    process classify {
      input T; output OUT;
      var c = 0;
      if (val(T) > 100) { c = 4; }
      else if (val(T) > 50) { c = 3; }
      else if (val(T) > 10) { c = 2; }
      else if (val(T) > 0) { c = 1; }
      else { c = 0; }
      emit OUT(c);
    }
  )", net);
  ASSERT_TRUE(r.ok()) << r.error;
  const cfsm::Cfsm& cl = net.cfsm(net.cfsm_id("classify"));
  cfsm::CfsmState st = cl.make_state();
  const std::pair<int, int> cases[] = {
      {200, 4}, {60, 3}, {20, 2}, {5, 1}, {0, 0}, {-9, 0}};
  for (const auto& [v, expect] : cases) {
    cfsm::ReactionInputs in;
    in.set(net.event_id("T"), v);
    EXPECT_EQ(cl.react(in, st).emissions[0].value, expect) << v;
  }
  // The empty process still runs cleanly end to end in both mappings.
  for (const bool sw : {true, false}) {
    core::CoEstimator est(&net, {});
    if (sw) est.map_sw(net.cfsm_id("idle"), 0);
    else est.map_hw(net.cfsm_id("idle"));
    est.map_sw(net.cfsm_id("classify"), 1);
    est.prepare();
    sim::Stimulus stim;
    stim.add(1, net.event_id("T"), 42);
    const auto res = est.run(stim);
    EXPECT_FALSE(res.truncated);
  }
}

TEST(TechParams, CustomLibraryChangesHwEnergyProportionally) {
  hw::Netlist nl;
  hwsyn::RtlBuilder rtl(&nl);
  const auto a = rtl.input_word("a", 16);
  const auto b = rtl.input_word("b", 16);
  const auto sum = rtl.add(a, b);
  for (const auto n : sum) nl.mark_output(n, "s");

  hw::TechParams heavy = hw::TechParams::generic_250nm();
  for (auto& c : heavy.cell_output_cap_f) c *= 3.0;
  heavy.wire_cap_per_fanout_f *= 3.0;
  heavy.input_net_cap_f *= 3.0;
  heavy.dff_output_cap_f *= 3.0;
  heavy.clock_cap_per_dff_f *= 3.0;

  hw::GateSim base(&nl);
  hw::Netlist nl2;
  hwsyn::RtlBuilder rtl2(&nl2);
  const auto a2 = rtl2.input_word("a", 16);
  const auto b2 = rtl2.input_word("b", 16);
  const auto sum2 = rtl2.add(a2, b2);
  for (const auto n : sum2) nl2.mark_output(n, "s");
  hw::GateSim scaled(&nl2, heavy);

  base.set_input_word(0, 0x1234, 16);
  base.set_input_word(16, 0x0F0F, 16);
  scaled.set_input_word(0, 0x1234, 16);
  scaled.set_input_word(16, 0x0F0F, 16);
  const Joules eb = base.step().energy;
  const Joules es = scaled.step().energy;
  EXPECT_NEAR(es / eb, 3.0, 1e-9);
}

TEST(PowerTraceCorners, PeakTiesResolveToEarlierWindow) {
  sim::PowerTrace t;
  const auto c = t.add_component("c");
  t.record(c, 5, 2e-9);
  t.record(c, 25, 2e-9);  // identical energy, later window
  const auto wf = t.waveform(c, 10);
  const auto peaks = sim::PowerTrace::peak_windows(wf, 2);
  EXPECT_EQ(peaks[0], 0u);
  EXPECT_EQ(peaks[1], 2u);
}

}  // namespace
}  // namespace socpower
