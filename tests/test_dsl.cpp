// CFSM DSL front-end tests: parsing, lowering to s-graphs, expression
// precedence, error diagnostics, and end-to-end co-estimation of a
// DSL-described system.
#include <gtest/gtest.h>

#include "cfsm/dsl.hpp"
#include "core/coestimator.hpp"

namespace socpower::cfsm {
namespace {

Network parse_ok(const char* src) {
  Network net;
  const DslResult r = parse_network(src, net);
  EXPECT_TRUE(r.ok()) << r.error;
  return net;
}

std::string parse_err(const char* src) {
  Network net;
  const DslResult r = parse_network(src, net);
  EXPECT_FALSE(r.ok());
  return r.error;
}

TEST(Dsl, MinimalProcess) {
  Network net = parse_ok(R"(
    event GO, DONE;
    process p {
      input GO;
      output DONE;
      var x = 5;
      x = x + 1;
      emit DONE(x);
    }
  )");
  ASSERT_EQ(net.cfsm_count(), 1u);
  const Cfsm& p = net.cfsm(net.cfsm_id("p"));
  EXPECT_EQ(p.vars().size(), 1u);
  EXPECT_EQ(p.vars()[0].init, 5);

  CfsmState st = p.make_state();
  ReactionInputs in;
  in.set(net.event_id("GO"), 0);
  const Reaction r = p.react(in, st);
  EXPECT_EQ(st.vars[0], 6);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].value, 6);
}

TEST(Dsl, IfElseChainsAndPresence) {
  Network net = parse_ok(R"(
    event A, B, OUT;
    process p {
      input A, B;
      output OUT;
      var mode = 0;
      if (present(A) && present(B)) {
        mode = 3;
      } else if (present(A)) {
        mode = 1;
      } else {
        mode = 2;
      }
      emit OUT(mode);
    }
  )");
  const Cfsm& p = net.cfsm(0);
  CfsmState st = p.make_state();
  ReactionInputs both, only_a, only_b;
  both.set(net.event_id("A"), 0);
  both.set(net.event_id("B"), 0);
  only_a.set(net.event_id("A"), 0);
  only_b.set(net.event_id("B"), 0);
  EXPECT_EQ(p.react(both, st).emissions[0].value, 3);
  EXPECT_EQ(p.react(only_a, st).emissions[0].value, 1);
  EXPECT_EQ(p.react(only_b, st).emissions[0].value, 2);
}

TEST(Dsl, ExpressionPrecedenceIsCLike) {
  Network net = parse_ok(R"(
    event T, OUT;
    process p {
      input T;
      output OUT;
      var r = 0;
      r = 2 + 3 * 4;              # 14
      r = r + (1 << 2 + 1);       # shift binds looser than '+': 1<<3 = 8
      if (r == 22 && 1 | 0) {     # '&&' binds looser than '|'
        emit OUT(-2 * -3 + ~0);   # 6 + (-1) = 5
      }
    }
  )");
  const Cfsm& p = net.cfsm(0);
  CfsmState st = p.make_state();
  ReactionInputs in;
  in.set(net.event_id("T"), 0);
  const Reaction r = p.react(in, st);
  EXPECT_EQ(st.vars[0], 22);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].value, 5);
}

TEST(Dsl, HexLiteralsAndValAccess) {
  Network net = parse_ok(R"(
    event IN, OUT;
    process p {
      input IN;
      output OUT;
      emit OUT(val(IN) & 0xFF);
    }
  )");
  const Cfsm& p = net.cfsm(0);
  CfsmState st = p.make_state();
  ReactionInputs in;
  in.set(net.event_id("IN"), 0x1234);
  EXPECT_EQ(p.react(in, st).emissions[0].value, 0x34);
}

TEST(Dsl, SampledInputsAndReset) {
  Network net = parse_ok(R"(
    event TRIG, TIME, RST;
    process p {
      input TRIG;
      sampled TIME;
      reset RST;
      var last = 7;
      last = val(TIME);
    }
  )");
  const Cfsm& p = net.cfsm(0);
  EXPECT_TRUE(p.triggers_on(net.event_id("TRIG")));
  EXPECT_FALSE(p.triggers_on(net.event_id("TIME")));
  EXPECT_TRUE(p.listens_to(net.event_id("TIME")));
  ASSERT_TRUE(p.reset_event().has_value());
  EXPECT_EQ(*p.reset_event(), net.event_id("RST"));
}

TEST(Dsl, MultipleProcessesShareEvents) {
  Network net = parse_ok(R"(
    event PING, PONG;
    process a { input PING; output PONG; emit PONG; }
    process b { input PONG; output PING; emit PING; }
  )");
  EXPECT_EQ(net.cfsm_count(), 2u);
  EXPECT_EQ(net.receivers(net.event_id("PONG")),
            std::vector<CfsmId>{net.cfsm_id("b")});
}

TEST(Dsl, CommentsBothStyles) {
  parse_ok(R"(
    // line comment
    event E;          # trailing comment
    process p {
      input E;
      # whole-line comment
    }
  )");
}

// --- diagnostics -------------------------------------------------------------

TEST(DslErrors, UnknownEventInDecl) {
  const auto e = parse_err("process p { input NOPE; }");
  EXPECT_NE(e.find("unknown event 'NOPE'"), std::string::npos);
  EXPECT_NE(e.find("line 1"), std::string::npos);
}

TEST(DslErrors, UnknownVariable) {
  const auto e = parse_err(R"(
    event E;
    process p { input E; x = 1; }
  )");
  EXPECT_NE(e.find("unknown variable 'x'"), std::string::npos);
  EXPECT_NE(e.find("line 3"), std::string::npos);
}

TEST(DslErrors, DuplicateEventAndProcessAndVar) {
  EXPECT_NE(parse_err("event E; event E;").find("duplicate event"),
            std::string::npos);
  EXPECT_NE(parse_err("event E; process p {} process p {}")
                .find("duplicate process"),
            std::string::npos);
  EXPECT_NE(
      parse_err("event E; process p { var v; var v; }")
          .find("duplicate variable"),
      std::string::npos);
}

TEST(DslErrors, SyntaxProblemsAreReported) {
  EXPECT_FALSE(parse_err("process p {").empty());          // missing '}'
  EXPECT_FALSE(parse_err("event E; process p { input E; emit; }").empty());
  EXPECT_FALSE(
      parse_err("event E; process p { var v; v = (1 + ; }").empty());
  EXPECT_FALSE(parse_err("garbage").empty());
  EXPECT_FALSE(parse_err("event E; process p { var v = 99999999999; }")
                   .empty());  // via integer literal rule in expressions?
}

TEST(DslErrors, OutOfRangeLiteralInExpression) {
  const auto e = parse_err(R"(
    event E;
    process p { input E; var v; v = 4294967296; }
  )");
  EXPECT_NE(e.find("32-bit"), std::string::npos);
}

// --- end to end ---------------------------------------------------------------

TEST(Dsl, EndToEndCoEstimation) {
  // A DSL-described two-process system runs through the full co-estimation
  // pipeline (SW compilation, HW synthesis, ISS + gate-level verification).
  Network net = parse_ok(R"(
    event KICK, STEP, LIGHT;
    process counter {          // software
      input KICK, STEP;
      output STEP, LIGHT;
      var n = 0;
      if (present(KICK)) {
        n = 8;
        emit STEP;
      }
      if (present(STEP)) {
        n = n - 1;
        if (n > 0) {
          emit STEP;
        } else {
          emit LIGHT(n);
        }
      }
    }
    process blinker {          // hardware
      input LIGHT;
      var on = 0;
      on = !on;
    }
  )");
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&net, cfg);
  est.map_sw(net.cfsm_id("counter"), 1);
  est.map_hw(net.cfsm_id("blinker"));
  est.prepare();
  sim::Stimulus stim;
  stim.add(1, net.event_id("KICK"));
  const auto r = est.run(stim);
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.total_energy, 0.0);
  EXPECT_GE(r.sw_reactions, 9u);  // kick + 8 steps
  EXPECT_EQ(est.process_state(net.cfsm_id("blinker")).vars[0], 1);
}

}  // namespace
}  // namespace socpower::cfsm
