// Integration tests of the co-estimation master: determinism, energy
// accounting, acceleration-technique behavior at the system level, RTOS
// scheduling, cache/bus coupling, and batch-vs-online HW equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/coestimator.hpp"
#include "systems/prodcons.hpp"
#include "systems/tcpip.hpp"

namespace socpower::core {
namespace {

TEST(EffectiveEmissions, LaterEmissionWinsAndResultIsSortedByEvent) {
  using cfsm::EmittedEvent;
  // Duplicates of event 5 and event 2 interleaved: for each event the
  // receiver observes only the latest value; output is sorted by event id.
  std::vector<EmittedEvent> ems = {
      {5, 10}, {2, 1}, {5, 20}, {7, 3}, {2, 4}, {5, 30},
  };
  const auto eff = effective_emissions(ems);
  ASSERT_EQ(eff.size(), 3u);
  EXPECT_EQ(eff[0].event, 2);
  EXPECT_EQ(eff[0].value, 4);   // later {2,4} wins over {2,1}
  EXPECT_EQ(eff[1].event, 5);
  EXPECT_EQ(eff[1].value, 30);  // last of the three emissions of event 5
  EXPECT_EQ(eff[2].event, 7);
  EXPECT_EQ(eff[2].value, 3);

  EXPECT_TRUE(effective_emissions({}).empty());
  const auto single = effective_emissions({{4, 9}});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].event, 4);
  EXPECT_EQ(single[0].value, 9);
}

systems::TcpIpParams small_tcpip() {
  systems::TcpIpParams p;
  p.num_packets = 4;
  p.packet_bytes = 32;
  p.dma_block_size = 8;
  return p;
}

TEST(CoEstimator, DeterministicAcrossRuns) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto r1 = est.run(sys.stimulus());
  const auto r2 = est.run(sys.stimulus());
  EXPECT_DOUBLE_EQ(r1.total_energy, r2.total_energy);
  EXPECT_EQ(r1.end_time, r2.end_time);
  EXPECT_EQ(r1.reactions, r2.reactions);
  EXPECT_EQ(r1.iss_instructions, r2.iss_instructions);
  EXPECT_EQ(r1.process_energy, r2.process_energy);
}

TEST(CoEstimator, EnergyAccountingIsConsistent) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  EXPECT_NEAR(r.total_energy,
              r.cpu_energy + r.hw_energy + r.bus_energy + r.cache_energy,
              r.total_energy * 1e-12);
  double processes = 0;
  for (const auto e : r.process_energy) processes += e;
  EXPECT_NEAR(processes, r.cpu_energy + r.hw_energy, r.total_energy * 1e-12);
  // The PowerTrace books the same totals.
  EXPECT_NEAR(est.power_trace().grand_total(), r.total_energy,
              r.total_energy * 1e-12);
}

TEST(CoEstimator, BatchAndOnlineHwEstimationAgree) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimatorConfig cfg;
  cfg.hw_batch = true;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto batch = est.run(sys.stimulus());
  est.config().hw_batch = false;
  const auto online = est.run(sys.stimulus());
  EXPECT_NEAR(batch.hw_energy, online.hw_energy, batch.hw_energy * 1e-9);
  EXPECT_NEAR(batch.total_energy, online.total_energy,
              batch.total_energy * 1e-9);
  EXPECT_EQ(batch.end_time, online.end_time);
}

TEST(CoEstimator, CachingIsExactAndSkipsIssWork) {
  auto p = small_tcpip();
  p.num_packets = 16;  // enough repetition to amortize the warmup calls
  systems::TcpIpSystem sys(p);
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto orig = est.run(sys.stimulus());
  est.config().accel = Acceleration::kCaching;
  const auto cached = est.run(sys.stimulus());
  // Zero accuracy loss (data-independent SPARClite power model) — the
  // paper's Table 1 claim.
  EXPECT_NEAR(cached.total_energy, orig.total_energy,
              orig.total_energy * 1e-9);
  EXPECT_EQ(cached.end_time, orig.end_time);  // delays cached too
  EXPECT_LT(cached.iss_invocations, orig.iss_invocations / 2);
  EXPECT_GT(cached.cache_hits_served, 0u);
}

TEST(CoEstimator, CachingRespectsWarmupThreshold) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimatorConfig cfg;
  cfg.accel = Acceleration::kCaching;
  cfg.energy_cache.thresh_iss_calls = 1'000'000;  // never eligible
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  EXPECT_EQ(r.cache_hits_served, 0u);  // everything simulated
}

TEST(CoEstimator, MacroModelOverestimatesSoftwareEnergy) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto orig = est.run(sys.stimulus());
  est.config().accel = Acceleration::kMacroModel;
  const auto mm = est.run(sys.stimulus());
  // Conservative (over-)estimate, and no ISS invocations at all.
  EXPECT_GT(mm.cpu_energy, orig.cpu_energy);
  EXPECT_EQ(mm.iss_invocations, 0u);
  // HW side is untouched by software macro-modeling.
  EXPECT_NEAR(mm.hw_energy, orig.hw_energy, orig.hw_energy * 0.35);
}

TEST(CoEstimator, MacroModelPreservesDmaRanking) {
  // The relative-accuracy property of Figure 6: ranking of DMA
  // configurations by energy is preserved under macro-modeling.
  std::vector<double> orig_e, mm_e;
  for (const unsigned dma : {4u, 16u, 64u}) {
    auto p = small_tcpip();
    p.num_packets = 6;
    p.dma_block_size = dma;
    systems::TcpIpSystem sys(p);
    CoEstimator est(&sys.network(), {});
    sys.configure(est);
    est.prepare();
    orig_e.push_back(est.run(sys.stimulus()).total_energy);
    est.config().accel = Acceleration::kMacroModel;
    mm_e.push_back(est.run(sys.stimulus()).total_energy);
  }
  EXPECT_TRUE(same_ranking(orig_e.data(), mm_e.data(), orig_e.size()));
}

TEST(CoEstimator, SamplingReducesWorkWithBoundedError) {
  auto p = small_tcpip();
  p.num_packets = 30;  // enough transitions for the K-memory to engage
  systems::TcpIpSystem sys(p);
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto orig = est.run(sys.stimulus());
  est.config().accel = Acceleration::kSampling;
  est.config().sampling = {.k_memory = 32, .keep_ratio = 0.25, .window = 4,
                           .min_length = 8};
  const auto sampled = est.run(sys.stimulus());
  EXPECT_LT(sampled.iss_invocations, orig.iss_invocations);
  EXPECT_EQ(sys.packets_ok(est), p.num_packets);  // function unaffected
  EXPECT_LT(percent_error(sampled.total_energy, orig.total_energy), 10.0);
}

TEST(CoEstimator, HwCachingAblationTradesAccuracyForWork) {
  auto p = small_tcpip();
  p.num_packets = 12;
  systems::TcpIpSystem sys(p);
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto orig = est.run(sys.stimulus());
  est.config().accel = Acceleration::kCaching;
  est.config().accelerate_hw = true;
  est.config().energy_cache.thresh_variance = 0.5;  // accept spread
  const auto hwc = est.run(sys.stimulus());
  EXPECT_LT(hwc.gate_sim_cycles, orig.gate_sim_cycles);
  // Data-dependent gate energy makes cached HW approximate but close.
  EXPECT_LT(percent_error(hwc.hw_energy, orig.hw_energy), 25.0);
}

TEST(CoEstimator, IcacheAddsPenaltiesAndEnergy) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimatorConfig cfg;
  cfg.icache.size_bytes = 256;  // tiny cache: misses guaranteed
  cfg.icache.line_bytes = 16;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto small_cache = est.run(sys.stimulus());
  est.config().enable_icache = false;
  const auto no_cache = est.run(sys.stimulus());
  EXPECT_GT(small_cache.icache.accesses, 0u);
  EXPECT_GT(small_cache.icache.misses, 0u);
  EXPECT_GT(small_cache.cache_energy, 0.0);
  EXPECT_DOUBLE_EQ(no_cache.cache_energy, 0.0);
  // Miss penalties stretch the schedule.
  EXPECT_GT(small_cache.end_time, no_cache.end_time);
  // Function unaffected either way.
  EXPECT_EQ(sys.packets_ok(est), 4);
}

TEST(CoEstimator, DmaSizeSweepsEnergyMonotonically) {
  double prev = 1e9;
  for (const unsigned dma : {2u, 8u, 32u}) {
    auto p = small_tcpip();
    p.dma_block_size = dma;
    systems::TcpIpSystem sys(p);
    CoEstimator est(&sys.network(), {});
    sys.configure(est);
    est.prepare();
    const auto r = est.run(sys.stimulus());
    EXPECT_LT(r.total_energy, prev) << "dma=" << dma;
    prev = r.total_energy;
  }
}

TEST(CoEstimator, RtosPriorityOrdersSimultaneousDispatch) {
  // Two SW tasks triggered in the same instant: the higher-priority task's
  // transition must complete (and emit) first.
  cfsm::Network net;
  const auto go = net.declare_event("GO");
  const auto out_hi = net.declare_event("OUT_HI");
  const auto out_lo = net.declare_event("OUT_LO");
  for (const auto& [name, out] :
       {std::pair{"hi", out_hi}, std::pair{"lo", out_lo}}) {
    cfsm::Cfsm& c = net.add_cfsm(name);
    c.add_input(go);
    c.add_output(out);
    auto& g = c.graph();
    g.set_root(g.add_emit(out, cfsm::kNoExpr, g.add_end()));
  }
  CoEstimator est(&net, {});
  est.map_sw(net.cfsm_id("hi"), /*priority=*/5);
  est.map_sw(net.cfsm_id("lo"), /*priority=*/1);
  est.prepare();

  std::vector<cfsm::EventId> order;
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == out_hi || o.event == out_lo) order.push_back(o.event);
      });
  sim::Stimulus stim;
  stim.add(1, go);
  est.run(stim);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], out_hi);
  EXPECT_EQ(order[1], out_lo);
}

TEST(CoEstimator, TransitionHookSeesEveryReaction) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  std::uint64_t hook_count = 0;
  Joules hook_energy = 0;
  est.set_transition_hook([&](const TransitionRecord& r) {
    ++hook_count;
    hook_energy += r.energy;
    EXPECT_GE(r.path, 0);
  });
  const auto r = est.run(sys.stimulus());
  // Reset transitions have no record; everything else does.
  EXPECT_EQ(hook_count, r.reactions);
  EXPECT_GT(hook_energy, 0.0);
}

TEST(CoEstimator, MaxReactionsGuardTruncates) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimatorConfig cfg;
  cfg.max_reactions = 10;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  EXPECT_TRUE(r.truncated);
  EXPECT_LE(r.reactions, 10u);
}

TEST(CoEstimator, PowerWaveformAvailableWhenSamplesKept) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimatorConfig cfg;
  cfg.keep_power_samples = true;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  const auto& trace = est.power_trace();
  const auto bus_c = trace.component_id("bus");
  ASSERT_GE(bus_c, 0);
  const auto wf = trace.waveform(bus_c, 64);
  double wf_sum = 0;
  for (const auto& w : wf) wf_sum += w.energy;
  EXPECT_NEAR(wf_sum, r.bus_energy, r.bus_energy * 1e-9);
  EXPECT_FALSE(est.bus_model().grant_times().empty());
}

TEST(CoEstimator, SeparateEstimationUnderestimatesTimingSensitiveHw) {
  systems::ProdConsSystem sys(
      {.num_packets = 8, .bytes_per_packet = 16, .tick_period = 32,
       .start_gap = 2});
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto co = est.run(sys.stimulus(/*horizon=*/30000));
  const auto sep = est.run_separate(sys.stimulus(/*horizon=*/30000));
  const auto prod = static_cast<std::size_t>(sys.producer());
  const auto cons = static_cast<std::size_t>(sys.consumer());
  // Producer: same computation either way -> estimates agree closely.
  EXPECT_LT(percent_error(sep.process_energy[prod], co.process_energy[prod]),
            5.0);
  // Consumer: the timing-dependent loop shrinks dramatically under
  // unit-delay traces -> significant under-estimation (Figure 1(b)).
  EXPECT_LT(sep.process_energy[cons], 0.7 * co.process_energy[cons]);
}

TEST(CoEstimator, ProcessStateExposesFunctionalOutcome) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  est.run(sys.stimulus());
  EXPECT_EQ(sys.packets_ok(est), 4);
  EXPECT_EQ(sys.packets_bad(est), 0);
}

TEST(CoEstimator, PathTablesPopulatedPerTask) {
  systems::TcpIpSystem sys(small_tcpip());
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  est.run(sys.stimulus());
  EXPECT_GT(est.path_table(sys.create_pack()).size(), 0u);
  EXPECT_GT(est.path_table(sys.checksum()).size(), 0u);
}

TEST(CoEstimator, DataDependentModeMakesCachingApproximate) {
  // With a DSP-style data-dependent instruction power model, per-path SW
  // energies vary, so a variance-tolerant cache introduces (bounded) error —
  // the behavior the paper predicts for such processors in Section 5.2.
  auto p = small_tcpip();
  p.num_packets = 10;
  systems::TcpIpSystem sys(p);
  CoEstimatorConfig cfg;
  cfg.data_nj_per_toggle = 1.5;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto orig = est.run(sys.stimulus());
  est.config().accel = Acceleration::kCaching;
  est.config().energy_cache.thresh_variance = 1.0;
  const auto cached = est.run(sys.stimulus());
  EXPECT_NE(cached.total_energy, orig.total_energy);
  EXPECT_LT(percent_error(cached.total_energy, orig.total_energy), 8.0);
}

}  // namespace
}  // namespace socpower::core
