// Combinatorial configuration smoke matrix: every acceleration mode ×
// hardware estimator kind × ip_check mapping must run the TCP/IP system to
// functional completion with self-consistent accounting. Plus negative
// coverage for the emission-ring capacity guard.
#include <gtest/gtest.h>

#include "systems/tcpip.hpp"

namespace socpower::core {
namespace {

struct MatrixCase {
  Acceleration accel;
  bool rtl_checksum;
  bool ip_check_hw;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrix, TcpIpRunsGreen) {
  const MatrixCase& m = GetParam();
  systems::TcpIpParams p;
  p.num_packets = 4;
  p.packet_bytes = 48;
  p.checksum_rtl_estimator = m.rtl_checksum;
  p.ip_check_in_hw = m.ip_check_hw;
  systems::TcpIpSystem sys(p);
  CoEstimatorConfig cfg;
  cfg.accel = m.accel;
  if (m.accel == Acceleration::kCaching) cfg.accelerate_hw = m.rtl_checksum;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(sys.packets_ok(est), 4);
  EXPECT_EQ(sys.packets_bad(est), 0);
  EXPECT_GT(r.total_energy, 0.0);
  EXPECT_NEAR(r.total_energy,
              r.cpu_energy + r.hw_energy + r.bus_energy + r.cache_energy,
              r.total_energy * 1e-9);
  // Repeatability in every configuration.
  const auto r2 = est.run(sys.stimulus());
  EXPECT_DOUBLE_EQ(r2.total_energy, r.total_energy);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConfigMatrix,
    ::testing::Values(
        MatrixCase{Acceleration::kNone, false, false},
        MatrixCase{Acceleration::kNone, false, true},
        MatrixCase{Acceleration::kNone, true, false},
        MatrixCase{Acceleration::kNone, true, true},
        MatrixCase{Acceleration::kCaching, false, false},
        MatrixCase{Acceleration::kCaching, false, true},
        MatrixCase{Acceleration::kCaching, true, false},
        MatrixCase{Acceleration::kCaching, true, true},
        MatrixCase{Acceleration::kMacroModel, false, false},
        MatrixCase{Acceleration::kMacroModel, false, true},
        MatrixCase{Acceleration::kMacroModel, true, false},
        MatrixCase{Acceleration::kMacroModel, true, true},
        MatrixCase{Acceleration::kSampling, false, false},
        MatrixCase{Acceleration::kSampling, false, true},
        MatrixCase{Acceleration::kSampling, true, false},
        MatrixCase{Acceleration::kSampling, true, true}),
    [](const auto& info) {
      const MatrixCase& m = info.param;
      return std::string(acceleration_name(m.accel)) +
             (m.rtl_checksum ? "_rtl" : "_gate") +
             (m.ip_check_hw ? "_asic1" : "_sw");
    });

TEST(EmissionRing, SizedForTheWorstCasePath) {
  // 40 emissions on one path: the ring is sized at compile time, so the
  // run completes and every emission arrives (this used to overflow a
  // fixed 16-slot ring into the adjacent input-flag area).
  cfsm::Network net;
  const auto trig = net.declare_event("T");
  const auto out = net.declare_event("OUT");
  cfsm::Cfsm& c = net.add_cfsm("spam");
  c.add_input(trig);
  c.add_output(out);
  auto& g = c.graph();
  cfsm::NodeId next = g.add_end();
  for (int i = 0; i < 40; ++i)
    next = g.add_emit(out, c.arena().constant(i), next);
  g.set_root(next);
  CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;  // compares ISS emissions with behavioral ones
  CoEstimator est(&net, cfg);
  est.map_sw(0, 0);
  est.prepare();
  EXPECT_GE(est.sw_image(0)->max_emits, 40u);
  int delivered = 0;
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == out) ++delivered;
      });
  sim::Stimulus stim;
  stim.add(1, trig);
  const auto r = est.run(stim);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(delivered, 40);
}

}  // namespace
}  // namespace socpower::core
