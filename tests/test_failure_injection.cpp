// Failure-injection coverage: corrupted checksums are detected, software
// tasks are isolated from each other in the shared data memory, and
// runaway self-triggering is caught by the reaction guard.
#include <gtest/gtest.h>

#include "cfsm/dsl.hpp"
#include "core/coestimator.hpp"
#include "systems/tcpip.hpp"

namespace socpower {
namespace {

TEST(FailureInjection, CorruptedExpectedChecksumIsFlagged) {
  // Overwrite the latched CHK_EXP with garbage right after the memory model
  // publishes it: ip_check must then count the packet as bad — exercising
  // the error path of the comparison (".. flags an error if they do not
  // match", Section 5.1).
  systems::TcpIpSystem sys({.num_packets = 3, .packet_bytes = 32});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto chk_exp = sys.network().event_id("CHK_EXP");
  int corrupted = 0;
  est.set_environment_hook(  // composes after the memory model's hook
      [&](const sim::EventOccurrence& o, sim::EventQueue& q) {
        if (o.event == chk_exp && o.value != -1 && corrupted < 2) {
          ++corrupted;
          q.post(o.time + 1, chk_exp, -1);  // tamper (marker value)
        }
      });
  est.run(sys.stimulus());
  EXPECT_EQ(corrupted, 2);
  EXPECT_EQ(sys.packets_bad(est), 2);
  EXPECT_EQ(sys.packets_ok(est), 1);
}

TEST(FailureInjection, SoftwareTasksAreMemoryIsolated) {
  // Two SW tasks with identically-named variables run interleaved on the
  // one CPU; each must keep its own state (their data blocks are disjoint
  // in the ISS memory).
  cfsm::Network net;
  const auto r = cfsm::parse_network(R"(
    event GO_A, GO_B, OUT_A, OUT_B;
    process a {
      input GO_A; output OUT_A;
      var count = 0;
      count = count + 1;
      emit OUT_A(count);
    }
    process b {
      input GO_B; output OUT_B;
      var count = 100;
      count = count + 10;
      emit OUT_B(count);
    }
  )", net);
  ASSERT_TRUE(r.ok()) << r.error;
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;  // cross-checks ISS memory vs behavioral state
  core::CoEstimator est(&net, cfg);
  est.map_sw(net.cfsm_id("a"), 1);
  est.map_sw(net.cfsm_id("b"), 2);
  est.prepare();
  sim::Stimulus stim;
  for (int i = 0; i < 5; ++i) {
    stim.add(1 + 10 * static_cast<sim::SimTime>(i), net.event_id("GO_A"));
    stim.add(2 + 10 * static_cast<sim::SimTime>(i), net.event_id("GO_B"));
  }
  est.run(stim);
  EXPECT_EQ(est.process_state(net.cfsm_id("a")).vars[0], 5);
  EXPECT_EQ(est.process_state(net.cfsm_id("b")).vars[0], 150);
}

TEST(FailureInjection, RunawaySelfTriggerHitsTheGuard) {
  cfsm::Network net;
  const auto r = cfsm::parse_network(R"(
    event GO, LOOP;
    process runaway {
      input GO, LOOP;
      output LOOP;
      emit LOOP;   // unconditional: re-triggers forever
    }
  )", net);
  ASSERT_TRUE(r.ok()) << r.error;
  core::CoEstimatorConfig cfg;
  cfg.max_reactions = 500;
  core::CoEstimator est(&net, cfg);
  est.map_hw(net.cfsm_id("runaway"));
  est.prepare();
  sim::Stimulus stim;
  stim.add(1, net.event_id("GO"));
  const auto res = est.run(stim);
  EXPECT_TRUE(res.truncated);
  EXPECT_LE(res.reactions, 500u);
}

TEST(FailureInjection, EmissionsToUnconnectedEventsAreHarmless) {
  cfsm::Network net;
  const auto r = cfsm::parse_network(R"(
    event GO, NOWHERE;
    process p {
      input GO; output NOWHERE;
      emit NOWHERE(42);
    }
  )", net);
  ASSERT_TRUE(r.ok()) << r.error;
  core::CoEstimator est(&net, {});
  est.map_sw(net.cfsm_id("p"), 0);
  est.prepare();
  sim::Stimulus stim;
  stim.add(1, net.event_id("GO"));
  const auto res = est.run(stim);
  EXPECT_FALSE(res.truncated);
  EXPECT_EQ(res.sw_reactions, 1u);
}

}  // namespace
}  // namespace socpower
