// VCD recorder tests.
#include <gtest/gtest.h>

#include "hw/vcd.hpp"
#include "hwsyn/rtl.hpp"

namespace socpower::hw {
namespace {

TEST(Vcd, RecordsToggleFlop) {
  Netlist nl;
  const NetId q = nl.add_dff(false);
  const NetId d = nl.add_gate(GateType::kInv, q);
  nl.connect_dff_d(q, d);
  nl.mark_output(q, "q");
  GateSim sim(&nl);
  VcdRecorder vcd(&sim);
  EXPECT_EQ(vcd.signal_count(), 2u);  // marked output + the DFF itself
  for (int t = 0; t < 4; ++t) {
    sim.step();
    vcd.sample(static_cast<std::uint64_t>(t));
  }
  const std::string out = vcd.render("top", "10ns");
  EXPECT_NE(out.find("$timescale 10ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! q $end"), std::string::npos);
  // The flop alternates: every sample produces a change record.
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#3"), std::string::npos);
}

TEST(Vcd, OnlyChangesAreEmitted) {
  Netlist nl;
  const NetId a = nl.add_primary_input("a");
  const NetId x = nl.add_gate(GateType::kBuf, a);
  nl.mark_output(x, "x");
  GateSim sim(&nl);
  VcdRecorder vcd(&sim);
  sim.set_input(0, true);
  sim.step();
  vcd.sample(0);
  sim.step();  // no change
  vcd.sample(1);
  sim.set_input(0, false);
  sim.step();
  vcd.sample(2);
  const std::string out = vcd.render();
  // Time 1 produced no change records, so "#1" must be absent.
  EXPECT_EQ(out.find("#1\n"), std::string::npos);
  EXPECT_NE(out.find("#2\n"), std::string::npos);
}

TEST(Vcd, WatchAddsArbitraryNets) {
  Netlist nl;
  hwsyn::RtlBuilder rtl(&nl);
  const auto w = rtl.constant(0x3, 4);
  GateSim sim(&nl);
  VcdRecorder vcd(&sim);
  vcd.watch(w[0], "bit zero");
  vcd.watch(w[1], "bit1");
  sim.step();
  vcd.sample(0);
  const std::string out = vcd.render();
  EXPECT_NE(out.find("bit_zero"), std::string::npos);  // space sanitized
  EXPECT_NE(out.find("bit1"), std::string::npos);
}

TEST(Vcd, IdentifiersStayUniqueBeyondAlphabet) {
  // 200 signals exceed the single-character VCD id space; identifiers must
  // remain unique.
  Netlist nl;
  std::vector<NetId> nets;
  for (int i = 0; i < 200; ++i) {
    const NetId n = nl.add_primary_input("i");
    nets.push_back(nl.add_gate(GateType::kBuf, n));
  }
  GateSim sim(&nl);
  VcdRecorder vcd(&sim);
  for (std::size_t i = 0; i < nets.size(); ++i)
    vcd.watch(nets[i], "n" + std::to_string(i));
  sim.step();
  vcd.sample(0);
  const std::string out = vcd.render();
  // Every $var line unique.
  std::size_t vars = 0, pos = 0;
  while ((pos = out.find("$var", pos)) != std::string::npos) {
    ++vars;
    pos += 4;
  }
  EXPECT_EQ(vars, 200u);
}

}  // namespace
}  // namespace socpower::hw
