// The analytical HW estimator tier: deterministic gate-calibrated fits,
// dist-wire and checkpoint round-trips, validate() rejection paths, the
// static-power report column, and the three-tier exploration funnel's
// bit-identity contract.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/coestimator.hpp"
#include "core/explorer.hpp"
#include "core/report.hpp"
#include "dist/wire.hpp"
#include "hw/analytical.hpp"
#include "serve/checkpoint.hpp"
#include "serve/session.hpp"
#include "systems/prodcons.hpp"
#include "systems/tcpip.hpp"

namespace socpower::core {
namespace {

systems::TcpIpParams hw_heavy_params() {
  systems::TcpIpParams p;
  p.num_packets = 3;
  p.packet_bytes = 32;
  p.ip_check_in_hw = true;  // two gate-level units: checksum + ip-check
  p.seed = 5;
  return p;
}

CoEstimatorConfig analytical_config(unsigned calib_vectors = 8) {
  CoEstimatorConfig cfg;
  cfg.estimators.hw_gate = "hw.analytical";
  cfg.hw_analytical_calibration_vectors = calib_vectors;
  return cfg;
}

RunResults run_tcpip(const systems::TcpIpParams& p,
                     const CoEstimatorConfig& cfg,
                     CoSimMaster::WarmSnapshot* warm_out = nullptr) {
  systems::TcpIpSystem sys(p);
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  RunResults res = est.run(sys.stimulus());
  if (warm_out) *warm_out = est.export_warm_state();
  return res;
}

/// All fitted unit models in a snapshot, in backend order (the analytical
/// backend is the only one that exports a non-empty model).
std::vector<hw::AnalyticalUnitModel> fitted_units(
    const CoSimMaster::WarmSnapshot& snap) {
  std::vector<hw::AnalyticalUnitModel> out;
  for (const BackendWarmState& b : snap.backends)
    out.insert(out.end(), b.analytical.units.begin(), b.analytical.units.end());
  return out;
}

void expect_models_bit_identical(
    const std::vector<hw::AnalyticalUnitModel>& a,
    const std::vector<hw::AnalyticalUnitModel>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("unit " + std::to_string(i));
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].calibration_vectors, b[i].calibration_vectors);
    for (std::size_t c = 0; c < hw::kAnalyticalTerms; ++c)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].coeff[c]),
                std::bit_cast<std::uint64_t>(b[i].coeff[c]))
          << "coeff " << c;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].leakage_watts),
              std::bit_cast<std::uint64_t>(b[i].leakage_watts));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].residual_rms_j),
              std::bit_cast<std::uint64_t>(b[i].residual_rms_j));
  }
}

// ---- model fitting ---------------------------------------------------------

TEST(Analytical, FitRecoversExactLinearLaw) {
  // Samples generated from a known linear law with diverse activity
  // vectors: the least-squares fit must recover the coefficients (the
  // ridge damping perturbs well-conditioned systems below 1e-4 relative).
  const double truth[hw::kAnalyticalTerms] = {2e-12, 5e-13, 1e-13, 8e-13};
  std::vector<hw::CalibrationSample> samples;
  for (int i = 0; i < 40; ++i) {
    hw::CalibrationSample s;
    s.activity.input_toggles = (i * 7) % 23;
    s.activity.input_ones = (i * 13) % 17;
    s.activity.state_toggles = (i * 3) % 11;
    s.energy = truth[0] + truth[1] * s.activity.input_toggles +
               truth[2] * s.activity.input_ones +
               truth[3] * s.activity.state_toggles;
    samples.push_back(s);
  }
  const hw::AnalyticalUnitModel m = hw::calibrate_analytical(1, samples);
  EXPECT_EQ(m.task, 1);
  EXPECT_EQ(m.calibration_vectors, 40u);
  for (std::size_t c = 0; c < hw::kAnalyticalTerms; ++c)
    EXPECT_NEAR(m.coeff[c], truth[c], std::abs(truth[c]) * 1e-4) << c;
  EXPECT_LT(m.residual_rms_j, 1e-15);

  // Refitting the same sample stream is bit-identical.
  const hw::AnalyticalUnitModel m2 = hw::calibrate_analytical(1, samples);
  expect_models_bit_identical({m}, {m2});
}

TEST(Analytical, DegenerateFeaturesStaySolvable) {
  // A unit whose inputs never vary makes the toggle columns collinear with
  // the intercept; the deterministic ridge keeps the solve finite.
  std::vector<hw::CalibrationSample> samples(8);
  for (auto& s : samples) s.energy = 3e-12;
  const hw::AnalyticalUnitModel m = hw::calibrate_analytical(0, samples);
  for (const double c : m.coeff) EXPECT_TRUE(std::isfinite(c));
  hw::ReactionActivity quiet;
  EXPECT_NEAR(m.predict(quiet), 3e-12, 3e-12 * 1e-3);
}

TEST(Analytical, PredictClampsAtZero) {
  hw::AnalyticalUnitModel m;
  m.coeff[0] = 1e-12;
  m.coeff[1] = -1e-12;  // hostile coefficients from a pathological fit
  hw::ReactionActivity a;
  a.input_toggles = 10.0;
  EXPECT_EQ(m.predict(a), 0.0);
}

// ---- calibration against the gate-level backend ----------------------------

TEST(Analytical, CalibrationIsDeterministicAcrossEstimators) {
  CoSimMaster::WarmSnapshot wa, wb;
  const RunResults ra = run_tcpip(hw_heavy_params(), analytical_config(), &wa);
  const RunResults rb = run_tcpip(hw_heavy_params(), analytical_config(), &wb);
  const auto ma = fitted_units(wa);
  ASSERT_FALSE(ma.empty());
  for (const auto& u : ma) EXPECT_GT(u.calibration_vectors, 0u);
  expect_models_bit_identical(ma, fitted_units(wb));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ra.total_energy),
            std::bit_cast<std::uint64_t>(rb.total_energy));
  EXPECT_EQ(ra.end_time, rb.end_time);
}

TEST(Analytical, TracksGateLevelEnergyLoosely) {
  // The bench enforces the real <=15% bound on full-size workloads; this is
  // the cheap smoke check that the fitted model is in the right ballpark
  // (leakage excluded: the gate backend does not model static power).
  const RunResults gate = run_tcpip(hw_heavy_params(), CoEstimatorConfig{});
  const RunResults ana = run_tcpip(hw_heavy_params(), analytical_config());
  const double dynamic = ana.total_energy - ana.leakage_energy;
  EXPECT_GT(dynamic, 0.0);
  EXPECT_NEAR(dynamic, gate.total_energy, gate.total_energy * 0.5);
  EXPECT_EQ(ana.end_time, gate.end_time);  // timing model is shared
}

TEST(Analytical, LeakageIsPerRunAndScalesWithTemperature) {
  systems::TcpIpSystem sys(hw_heavy_params());
  CoEstimator est(&sys.network(), analytical_config());
  sys.configure(est);
  est.prepare();
  const RunResults cold = est.run(sys.stimulus());
  EXPECT_GT(cold.leakage_energy, 0.0);
  ASSERT_FALSE(cold.process_leakage.empty());
  Joules split = 0.0;
  for (const Joules j : cold.process_leakage) split += j;
  EXPECT_DOUBLE_EQ(split, cold.leakage_energy);

  // +60 K quadruples subthreshold leakage (doubles every 30 K) — a per-run
  // knob, no re-prepare.
  est.config().hw_temperature_k = 360.0;
  const RunResults hot = est.run(sys.stimulus());
  EXPECT_NEAR(hot.leakage_energy, 4.0 * cold.leakage_energy,
              cold.leakage_energy * 1e-9);
}

TEST(Analytical, StaticColumnAppearsInReportOnlyWhenPresent) {
  systems::TcpIpSystem sys(hw_heavy_params());
  CoEstimator est(&sys.network(), analytical_config());
  sys.configure(est);
  est.prepare();
  const RunResults res = est.run(sys.stimulus());
  const std::string with = render_report(sys.network(), est, res, {});
  EXPECT_NE(with.find("static"), std::string::npos);

  systems::TcpIpSystem gate_sys(hw_heavy_params());
  CoEstimator gate_est(&gate_sys.network(), {});
  gate_sys.configure(gate_est);
  gate_est.prepare();
  const RunResults gate_res = gate_est.run(gate_sys.stimulus());
  const std::string without =
      render_report(gate_sys.network(), gate_est, gate_res, {});
  EXPECT_EQ(without.find("static"), std::string::npos);
}

// ---- warm state, wire, checkpoint ------------------------------------------

TEST(Analytical, WireRoundTripIsBitExact) {
  CoSimMaster::WarmSnapshot warm;
  (void)run_tcpip(hw_heavy_params(), analytical_config(), &warm);
  hw::AnalyticalModel model;
  for (const BackendWarmState& b : warm.backends)
    if (!b.analytical.empty()) model = b.analytical;
  ASSERT_FALSE(model.empty());

  dist::WireWriter w;
  dist::put_analytical_model(w, model);
  const std::vector<std::uint8_t> bytes = w.bytes();
  dist::WireReader r(bytes.data(), bytes.size());
  hw::AnalyticalModel back;
  ASSERT_TRUE(dist::get_analytical_model(r, &back));
  EXPECT_TRUE(r.at_end());
  expect_models_bit_identical(model.units, back.units);
  // Mid-calibration moments ride along bit-exactly too.
  ASSERT_EQ(back.pending.size(), model.pending.size());
  for (std::size_t i = 0; i < model.pending.size(); ++i) {
    EXPECT_EQ(back.pending[i].task, model.pending[i].task);
    EXPECT_EQ(back.pending[i].moments.n, model.pending[i].moments.n);
    for (std::size_t k = 0; k < hw::kAnalyticalTerms * hw::kAnalyticalTerms;
         ++k)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.pending[i].moments.xtx[k]),
                std::bit_cast<std::uint64_t>(model.pending[i].moments.xtx[k]));
  }

  // Every strict prefix is rejected, never mis-decoded.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    dist::WireReader tr(bytes.data(), cut);
    hw::AnalyticalModel junk;
    EXPECT_FALSE(dist::get_analytical_model(tr, &junk) && tr.ok())
        << "cut at " << cut;
  }
}

TEST(Analytical, WarmImportSkipsRecalibration) {
  // Target 4 (= the coefficient count): every unit reaches it in the donor
  // run, so the imported model covers all units.
  CoSimMaster::WarmSnapshot warm;
  (void)run_tcpip(hw_heavy_params(), analytical_config(4), &warm);
  ASSERT_FALSE(fitted_units(warm).empty());

  auto warm_run = [&](RunResults* out) {
    systems::TcpIpSystem sys(hw_heavy_params());
    CoEstimator est(&sys.network(), analytical_config(4));
    sys.configure(est);
    est.prepare();
    ASSERT_TRUE(est.import_warm_state(warm));
    *out = est.run(sys.stimulus());
  };
  RunResults rb, rc;
  warm_run(&rb);
  warm_run(&rc);
  // Every unit arrives fitted: the warm session never steps the gate
  // simulator at all.
  EXPECT_EQ(rb.gate_sim_cycles, 0u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(rb.total_energy),
            std::bit_cast<std::uint64_t>(rc.total_energy));
  EXPECT_EQ(rb.end_time, rc.end_time);
}

TEST(Analytical, CheckpointRoundTripPreservesModelBits) {
  CoSimMaster::WarmSnapshot warm;
  (void)run_tcpip(hw_heavy_params(), analytical_config(), &warm);
  ASSERT_FALSE(fitted_units(warm).empty());

  serve::Checkpoint ckpt;
  ckpt.system.name = "tcpip";
  ckpt.system.set("num_packets", 3);
  ckpt.system.set("packet_bytes", 32);
  ckpt.system.set("ip_check_in_hw", 1);
  ckpt.system.set("seed", 5);
  CoEstimatorConfig cfg = analytical_config();
  ckpt.structural = serve::StructuralConfig::from(cfg);
  ckpt.warm = warm;

  const std::vector<std::uint8_t> blob = serve::encode_checkpoint(ckpt);
  serve::Checkpoint back;
  std::string error;
  ASSERT_TRUE(serve::decode_checkpoint(blob, &back, &error)) << error;
  expect_models_bit_identical(fitted_units(warm), fitted_units(back.warm));
}

TEST(Analytical, ServeSessionRestoreContinuesBitIdentically) {
  // calib=4: every unit fits in run 1, so the restored session never steps
  // the gate simulator. calib=8: one unit is still mid-calibration at the
  // checkpoint — the exported moments must make the restored continuation
  // bit-identical to the uninterrupted session anyway.
  for (const unsigned calib : {4u, 8u}) {
    SCOPED_TRACE("calib " + std::to_string(calib));
    serve::SystemParams sp;
    sp.name = "tcpip";
    sp.set("num_packets", 3);
    sp.set("packet_bytes", 32);
    sp.set("ip_check_in_hw", 1);
    sp.set("seed", 5);
    serve::StructuralConfig sc;
    sc.estimators.hw_gate = "hw.analytical";

    std::string error;
    std::unique_ptr<serve::Session> hot =
        serve::Session::create(sp, sc, &error);
    ASSERT_NE(hot, nullptr) << error;
    serve::RunRequest rr;
    rr.hw_analytical_calibration_vectors = calib;  // rides the wire per run
    RunResults r1, r2;
    ASSERT_TRUE(hot->estimate(rr, &r1, nullptr, &error)) << error;
    EXPECT_GT(r1.gate_sim_cycles, 0u);  // cold session calibrates

    serve::Checkpoint ckpt = hot->checkpoint();
    const std::vector<std::uint8_t> blob = serve::encode_checkpoint(ckpt);
    serve::Checkpoint decoded;
    ASSERT_TRUE(serve::decode_checkpoint(blob, &decoded, &error)) << error;
    std::unique_ptr<serve::Session> restored =
        serve::Session::restore(decoded, &error);
    ASSERT_NE(restored, nullptr) << error;

    ASSERT_TRUE(hot->estimate(rr, &r2, nullptr, &error)) << error;
    RunResults r2b;
    ASSERT_TRUE(restored->estimate(rr, &r2b, nullptr, &error)) << error;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r2b.total_energy),
              std::bit_cast<std::uint64_t>(r2.total_energy));
    EXPECT_EQ(r2b.end_time, r2.end_time);
    EXPECT_EQ(r2b.gate_sim_cycles, r2.gate_sim_cycles);
    if (calib == 4) EXPECT_EQ(r2b.gate_sim_cycles, 0u);
  }
}

// ---- config validation -----------------------------------------------------

using AnalyticalDeathTest = ::testing::Test;

TEST(AnalyticalDeathTest, ZeroCalibrationVectorsAbortsPrepare) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  systems::TcpIpSystem sys(hw_heavy_params());
  CoEstimatorConfig cfg = analytical_config(1);
  cfg.hw_analytical_calibration_vectors = 0;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  EXPECT_DEATH(est.prepare(), "hw_analytical_calibration_vectors");
}

TEST(AnalyticalDeathTest, NegativeLeakageAbortsPrepare) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  systems::TcpIpSystem sys(hw_heavy_params());
  CoEstimatorConfig cfg = analytical_config();
  cfg.hw_leakage_nw_per_gate = -1.0;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  EXPECT_DEATH(est.prepare(), "hw_leakage_nw_per_gate");
}

TEST(AnalyticalDeathTest, BadTemperatureAndChannelLengthAbortPrepare) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  systems::TcpIpSystem sys(hw_heavy_params());
  CoEstimatorConfig cfg = analytical_config();
  cfg.hw_temperature_k = 0.0;
  cfg.hw_channel_length_nm = -5.0;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  EXPECT_DEATH(est.prepare(), "hw_temperature_k");
}

TEST(AnalyticalDeathTest, PrefilterWithoutAnalyticalBackendAbortsPrepare) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  systems::TcpIpSystem sys(hw_heavy_params());
  CoEstimatorConfig cfg;  // hw_gate stays "hw.gate"
  cfg.analytical_prefilter = 8;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  EXPECT_DEATH(est.prepare(), "analytical_prefilter");
}

// ---- three-tier exploration funnel -----------------------------------------

RunResults energy_only(double joules) {
  RunResults r;
  r.total_energy = joules;
  return r;
}

/// Synthetic design points with deterministic energies: analytical ranking
/// agrees with coarse ranking (the calibrated-model assumption the funnel's
/// bit-identity guarantee is conditioned on), exact adds a fixed offset.
std::vector<ExplorationPoint> synthetic_points(std::size_t n) {
  std::vector<ExplorationPoint> pts;
  for (std::size_t i = 0; i < n; ++i) {
    const double coarse = 1e-6 * static_cast<double>((i * 5 + 3) % n + 1);
    ExplorationPoint p;
    p.label = "p" + std::to_string(i);
    p.run_coarse = [coarse] { return energy_only(coarse); };
    p.run_exact = [coarse] { return energy_only(coarse * 0.875); };
    p.run_analytical = [coarse] { return energy_only(coarse * 1.25); };
    pts.push_back(std::move(p));
  }
  return pts;
}

void expect_top_entries_equal(const ExplorationOutcome& full,
                              const ExplorationOutcome& funneled) {
  ASSERT_LE(funneled.ranked.size(), full.ranked.size());
  for (std::size_t i = 0; i < funneled.ranked.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(funneled.ranked[i].label, full.ranked[i].label);
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(funneled.ranked[i].coarse_energy),
        std::bit_cast<std::uint64_t>(full.ranked[i].coarse_energy));
    ASSERT_EQ(funneled.ranked[i].exact_energy.has_value(),
              full.ranked[i].exact_energy.has_value());
    if (funneled.ranked[i].exact_energy)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(*funneled.ranked[i].exact_energy),
                std::bit_cast<std::uint64_t>(*full.ranked[i].exact_energy));
  }
  EXPECT_EQ(funneled.best().label, full.best().label);
  EXPECT_EQ(funneled.winner_confirmed, full.winner_confirmed);
}

TEST(AnalyticalExplorer, PrefilteredTopKIsBitIdenticalToFullRun) {
  const auto pts = synthetic_points(8);
  const ExplorationOutcome full = explore(pts, /*verify_top=*/3);
  ExploreOptions opt;
  opt.threads = 1;
  opt.analytical_prefilter = 4;
  const ExplorationOutcome funneled = explore(pts, /*verify_top=*/3, opt);
  EXPECT_EQ(funneled.prefilter_kept, 4u);
  EXPECT_EQ(funneled.ranked.size(), 4u);
  expect_top_entries_equal(full, funneled);
  const std::string text = funneled.render();
  EXPECT_NE(text.find("analytical prefilter"), std::string::npos);
}

TEST(AnalyticalExplorer, PrefilterCoveringAllPointsDegradesToTwoPhase) {
  const auto pts = synthetic_points(5);
  const ExplorationOutcome full = explore(pts, /*verify_top=*/2);
  ExploreOptions opt;
  opt.analytical_prefilter = 5;  // K >= size: nothing to cut
  const ExplorationOutcome funneled = explore(pts, /*verify_top=*/2, opt);
  EXPECT_EQ(funneled.prefilter_kept, 0u);
  ASSERT_EQ(funneled.ranked.size(), full.ranked.size());
  expect_top_entries_equal(full, funneled);
}

TEST(AnalyticalExplorer, MissingAnalyticalTierFallsBackToCoarse) {
  auto pts = synthetic_points(6);
  for (auto& p : pts) p.run_analytical = nullptr;
  ExploreOptions opt;
  opt.analytical_prefilter = 3;
  const ExplorationOutcome funneled = explore(pts, /*verify_top=*/1, opt);
  EXPECT_EQ(funneled.prefilter_kept, 3u);
  const ExplorationOutcome full = explore(pts, /*verify_top=*/1);
  expect_top_entries_equal(full, funneled);
}

/// Real-system funnel: coarse = macro-model, exact = full co-simulation,
/// analytical = the calibrated hw.analytical backend.
std::vector<ExplorationPoint> real_points() {
  std::vector<ExplorationPoint> pts;
  for (const unsigned dma : {4u, 16u, 64u}) {
    auto make_run = [dma](int tier) {
      return [dma, tier] {
        systems::TcpIpSystem sys({.num_packets = 3,
                                  .packet_bytes = 32,
                                  .dma_block_size = dma,
                                  .ip_check_in_hw = true,
                                  .seed = 5});
        CoEstimatorConfig cfg;
        if (tier == 0) cfg.accel = Acceleration::kMacroModel;
        if (tier == 2) cfg = analytical_config();
        CoEstimator est(&sys.network(), cfg);
        sys.configure(est);
        est.prepare();
        return est.run(sys.stimulus());
      };
    };
    ExplorationPoint p;
    p.label = "dma=" + std::to_string(dma);
    p.run_coarse = make_run(0);
    p.run_exact = make_run(1);
    p.run_analytical = make_run(2);
    pts.push_back(std::move(p));
  }
  return pts;
}

TEST(AnalyticalExplorer, RealSystemFunnelKeepsWinner) {
  const auto pts = real_points();
  const ExplorationOutcome full = explore(pts, /*verify_top=*/1);
  ExploreOptions opt;
  opt.analytical_prefilter = 2;
  const ExplorationOutcome funneled = explore(pts, /*verify_top=*/1, opt);
  EXPECT_EQ(funneled.prefilter_kept, 2u);
  EXPECT_GT(funneled.analytical_seconds, 0.0);
  expect_top_entries_equal(full, funneled);
}

TEST(AnalyticalExplorer, ShardedFunnelMatchesSerial) {
  if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
  const auto pts = synthetic_points(8);
  ExploreOptions serial_opt;
  serial_opt.threads = 1;
  serial_opt.analytical_prefilter = 4;
  const ExplorationOutcome serial = explore(pts, /*verify_top=*/2, serial_opt);
  ShardedExploreOptions sharded_opt;
  sharded_opt.workers = 3;
  sharded_opt.analytical_prefilter = 4;
  const ExplorationOutcome sharded =
      explore_sharded(pts, /*verify_top=*/2, sharded_opt);
  EXPECT_EQ(sharded.prefilter_kept, serial.prefilter_kept);
  ASSERT_EQ(sharded.ranked.size(), serial.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(sharded.ranked[i].label, serial.ranked[i].label);
    EXPECT_EQ(sharded.ranked[i].coarse_energy, serial.ranked[i].coarse_energy);
    EXPECT_EQ(sharded.ranked[i].exact_energy, serial.ranked[i].exact_energy);
  }
  EXPECT_EQ(sharded.winner_confirmed, serial.winner_confirmed);
}

}  // namespace
}  // namespace socpower::core
