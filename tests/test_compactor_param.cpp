// Parameterized sweep over the sequence compactor's configuration space:
// for every (K, ratio, window) combination and several stream shapes, the
// selection must honor the requested fraction and keep the unigram
// distribution close.
#include <gtest/gtest.h>

#include <cmath>

#include "core/compactor.hpp"
#include "util/rng.hpp"

namespace socpower::core {
namespace {

struct SweepCase {
  std::size_t k;
  double ratio;
  std::size_t window;
  int shape;  // 0 = uniform, 1 = skewed, 2 = periodic, 3 = two-phase
};

std::vector<std::uint32_t> make_stream(int shape, std::size_t n,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (shape) {
      case 0:
        s.push_back(static_cast<std::uint32_t>(rng.below(8)));
        break;
      case 1:
        s.push_back(rng.chance(0.85) ? 0u
                                     : static_cast<std::uint32_t>(
                                           1 + rng.below(7)));
        break;
      case 2:
        s.push_back(static_cast<std::uint32_t>(i % 5));
        break;
      default:
        s.push_back(i < n / 2 ? 1u : 2u);
        break;
    }
  }
  return s;
}

class CompactorSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CompactorSweep, SelectionHonorsRatioAndDistribution) {
  const SweepCase& c = GetParam();
  const auto stream = make_stream(c.shape, c.k, 1000 + c.k);
  SequenceCompactor comp({.k_memory = c.k, .keep_ratio = c.ratio,
                          .window = c.window, .min_length = 8});
  const auto kept = comp.select(stream);
  ASSERT_FALSE(kept.empty());
  // Fraction within one window of the target.
  const double frac =
      static_cast<double>(kept.size()) / static_cast<double>(stream.size());
  EXPECT_GE(frac, c.ratio - static_cast<double>(c.window) /
                                static_cast<double>(stream.size()) - 1e-9);
  EXPECT_LE(frac, c.ratio + static_cast<double>(c.window) /
                                static_cast<double>(stream.size()) + 1e-9);
  // Indices valid, strictly increasing.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_LT(kept[i], stream.size());
    if (i > 0) {
      EXPECT_LT(kept[i - 1], kept[i]);
    }
  }
  // Unigram distance bounded (generous: it must beat a worst-case pick).
  EXPECT_LT(SequenceCompactor::unigram_distance(stream, kept), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompactorSweep,
    ::testing::Values(
        SweepCase{32, 0.25, 4, 0}, SweepCase{32, 0.25, 4, 1},
        SweepCase{32, 0.25, 4, 2}, SweepCase{32, 0.25, 4, 3},
        SweepCase{64, 0.125, 4, 0}, SweepCase{64, 0.125, 8, 1},
        SweepCase{64, 0.5, 2, 2}, SweepCase{64, 0.5, 8, 3},
        SweepCase{128, 0.25, 8, 0}, SweepCase{128, 0.0625, 4, 1},
        SweepCase{128, 0.75, 4, 2}, SweepCase{256, 0.25, 16, 3}),
    [](const auto& info) {
      const SweepCase& c = info.param;
      return "k" + std::to_string(c.k) + "_r" +
             std::to_string(static_cast<int>(c.ratio * 10000)) + "_w" +
             std::to_string(c.window) + "_s" + std::to_string(c.shape);
    });

TEST(CompactorSweep, DeterministicSelection) {
  const auto stream = make_stream(0, 128, 7);
  SequenceCompactor comp(
      {.k_memory = 128, .keep_ratio = 0.25, .window = 4, .min_length = 8});
  EXPECT_EQ(comp.select(stream), comp.select(stream));
}

}  // namespace
}  // namespace socpower::core
