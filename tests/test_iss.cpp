// ISS tests: per-instruction semantics (parameterized), pipeline timing
// (load-use interlock, delay slots, multi-cycle multiply), encoding
// round-trips, assembler, and the instruction-level power model.
#include <gtest/gtest.h>

#include "iss/assembler.hpp"
#include "iss/isa.hpp"
#include "iss/iss.hpp"
#include "iss/power_model.hpp"

namespace socpower::iss {
namespace {

Iss make_iss(IssConfig cfg = {}) {
  return Iss(InstructionPowerModel::sparclite(), cfg);
}

RunResult run_asm(Iss& iss, const std::string& src,
                  std::uint32_t base = 0x10) {
  const AsmResult r = assemble(src, base);
  EXPECT_TRUE(r.ok()) << r.error;
  iss.load_program(r.program, base);
  iss.reset_cpu();
  iss.set_pc(base);
  return iss.run();
}

TEST(IssExec, MoviAndArithmetic) {
  Iss iss = make_iss();
  run_asm(iss, R"(
    movi r4, 10
    movi r5, 3
    add  r6, r4, r5
    sub  r7, r4, r5
    mul  r8, r4, r5
    div  r9, r4, r5
    halt
  )");
  EXPECT_EQ(iss.reg(6), 13);
  EXPECT_EQ(iss.reg(7), 7);
  EXPECT_EQ(iss.reg(8), 30);
  EXPECT_EQ(iss.reg(9), 3);
}

TEST(IssExec, DivByZeroYieldsZero) {
  Iss iss = make_iss();
  run_asm(iss, "movi r4, 7\n div r5, r4, r0\n halt");
  EXPECT_EQ(iss.reg(5), 0);
}

TEST(IssExec, R0IsHardwiredZero) {
  Iss iss = make_iss();
  run_asm(iss, "movi r0, 55\n add r4, r0, r0\n halt");
  EXPECT_EQ(iss.reg(0), 0);
  EXPECT_EQ(iss.reg(4), 0);
}

TEST(IssExec, LogicalImmediatesZeroExtend) {
  Iss iss = make_iss();
  run_asm(iss, R"(
    movhi r4, 0x1234
    ori   r4, r4, 0x8765
    movi  r5, -1
    andi  r6, r5, 0xffff
    halt
  )");
  EXPECT_EQ(static_cast<std::uint32_t>(iss.reg(4)), 0x12348765u);
  EXPECT_EQ(iss.reg(6), 0xffff);
}

TEST(IssExec, ShiftsAndSetLessThan) {
  Iss iss = make_iss();
  run_asm(iss, R"(
    movi r4, -16
    srai r5, r4, 2
    srli r6, r4, 28
    slli r7, r4, 1
    movi r8, 3
    slt  r9, r4, r8
    sltu r10, r4, r8
    slti r11, r8, 10
    halt
  )");
  EXPECT_EQ(iss.reg(5), -4);
  EXPECT_EQ(iss.reg(6), 15);
  EXPECT_EQ(iss.reg(7), -32);
  EXPECT_EQ(iss.reg(9), 1);   // signed: -16 < 3
  EXPECT_EQ(iss.reg(10), 0);  // unsigned: 0xfffffff0 > 3
  EXPECT_EQ(iss.reg(11), 1);
}

TEST(IssExec, LoadStoreWordAndByte) {
  Iss iss = make_iss();
  run_asm(iss, R"(
    movi r4, 0x200
    movi r5, -2
    sw   r5, 0(r4)
    lw   r6, 0(r4)
    movi r7, 0xab
    sb   r7, 8(r4)
    lbu  r8, 8(r4)
    lb   r9, 8(r4)
    halt
  )");
  EXPECT_EQ(iss.reg(6), -2);
  EXPECT_EQ(iss.reg(8), 0xab);
  EXPECT_EQ(iss.reg(9), static_cast<std::int8_t>(0xab));
  EXPECT_EQ(iss.load_word(0x200), -2);
}

TEST(IssExec, BranchTakenAndDelaySlotExecutes) {
  Iss iss = make_iss();
  run_asm(iss, R"(
    movi r4, 1
    beq  r4, r4, target
    movi r5, 77      ; delay slot: executes
    movi r6, 88      ; skipped
  target:
    halt
  )");
  EXPECT_EQ(iss.reg(5), 77);
  EXPECT_EQ(iss.reg(6), 0);
}

TEST(IssExec, BranchNotTakenFallsThrough) {
  Iss iss = make_iss();
  run_asm(iss, R"(
    movi r4, 1
    bne  r4, r4, away
    nop
    movi r6, 88
  away:
    halt
  )");
  EXPECT_EQ(iss.reg(6), 88);
}

TEST(IssExec, BackwardBranchLoop) {
  Iss iss = make_iss();
  const RunResult r = run_asm(iss, R"(
    movi r4, 0
    movi r5, 10
  loop:
    addi r4, r4, 1
    bne  r4, r5, loop
    nop
    halt
  )");
  EXPECT_EQ(iss.reg(4), 10);
  EXPECT_TRUE(r.halted);
  // 2 setup + 10 * (addi + bne + nop-in-delay-or-fallthrough...) + halt
  EXPECT_GT(r.instructions, 20u);
}

TEST(IssExec, JalAndJrImplementCallReturn) {
  Iss iss = make_iss();
  run_asm(iss, R"(
    jal r30, func
    nop
    movi r5, 5       ; after return
    halt
  func:
    movi r4, 4
    jr  r30
    nop
  )");
  EXPECT_EQ(iss.reg(4), 4);
  EXPECT_EQ(iss.reg(5), 5);
}

TEST(IssTiming, LoadUseInterlockAddsOneStall) {
  IssConfig cfg;
  cfg.pipeline_fill_cycles = 0;
  Iss a = make_iss(cfg);
  const RunResult dependent = run_asm(a, R"(
    movi r4, 0x100
    lw   r5, 0(r4)
    add  r6, r5, r5   ; uses the load result immediately
    halt
  )");
  Iss b = make_iss(cfg);
  const RunResult spaced = run_asm(b, R"(
    movi r4, 0x100
    lw   r5, 0(r4)
    nop               ; covers the interlock
    add  r6, r5, r5
    halt
  )");
  EXPECT_EQ(dependent.stall_cycles, 1u);
  EXPECT_EQ(spaced.stall_cycles, 0u);
  // Interlocked version: same cycles, one fewer instruction.
  EXPECT_EQ(dependent.cycles, spaced.cycles);
}

TEST(IssTiming, MultiplyTakesThreeCycles) {
  IssConfig cfg;
  cfg.pipeline_fill_cycles = 0;
  Iss a = make_iss(cfg);
  const RunResult with_mul = run_asm(a, "mul r4, r5, r6\n halt");
  Iss b = make_iss(cfg);
  const RunResult with_add = run_asm(b, "add r4, r5, r6\n halt");
  EXPECT_EQ(with_mul.cycles - with_add.cycles, 2u);  // 3 vs 1
}

TEST(IssTiming, PipelineFillChargedPerInvocation) {
  IssConfig cfg;
  cfg.pipeline_fill_cycles = 3;
  Iss iss = make_iss(cfg);
  const RunResult r = run_asm(iss, "halt");
  EXPECT_EQ(r.cycles, 4u);  // 3 fill + 1 halt
}

TEST(IssExec, BudgetExhaustionReportsNotHalted) {
  Iss iss = make_iss();
  const AsmResult r = assemble("loop: j loop\n nop", 0x10);
  ASSERT_TRUE(r.ok());
  iss.load_program(r.program, 0x10);
  iss.set_pc(0x10);
  const RunResult res = iss.run(100);
  EXPECT_FALSE(res.halted);
  EXPECT_EQ(res.instructions, 100u);
}

TEST(IssPower, EnergyPositiveAndAdditive) {
  Iss iss = make_iss();
  const RunResult one = run_asm(iss, "add r4, r5, r6\n halt");
  Iss iss2 = make_iss();
  const RunResult two =
      run_asm(iss2, "add r4, r5, r6\n add r7, r5, r6\n halt");
  EXPECT_GT(one.energy, 0.0);
  EXPECT_GT(two.energy, one.energy);
}

TEST(IssPower, DataIndependentBydefault) {
  // Same instruction sequence, different data values: identical energy.
  Iss a = make_iss();
  run_asm(a, "movi r4, 1\n mul r5, r4, r4\n halt");
  const RunResult ra = run_asm(a, "movi r4, 1\n mul r5, r4, r4\n halt");
  Iss b = make_iss();
  const RunResult rb =
      run_asm(b, "movi r4, 32000\n mul r5, r4, r4\n halt");
  EXPECT_DOUBLE_EQ(ra.energy, rb.energy);
}

TEST(IssPower, DspModeIsDataDependent) {
  Iss a(InstructionPowerModel::dsp_like(0.5), {});
  const RunResult ra = run_asm(a, "movi r4, 0\n add r5, r4, r4\n halt");
  Iss b(InstructionPowerModel::dsp_like(0.5), {});
  const RunResult rb =
      run_asm(b, "movi r4, 0x7fff\n add r5, r4, r4\n halt");
  EXPECT_NE(ra.energy, rb.energy);
}

TEST(IssPower, MemoryInstructionsCostMoreThanAlu) {
  const auto m = InstructionPowerModel::sparclite();
  EXPECT_GT(m.base_current_ma(EnergyClass::kLoad),
            m.base_current_ma(EnergyClass::kAlu));
  EXPECT_GT(m.base_current_ma(EnergyClass::kAlu),
            m.base_current_ma(EnergyClass::kNop));
}

TEST(IssPower, InterInstructionOverheadAffectsEnergy) {
  auto m = InstructionPowerModel::sparclite();
  const Joules same =
      m.instruction_energy(EnergyClass::kAlu, EnergyClass::kAlu, 1);
  const Joules cross =
      m.instruction_energy(EnergyClass::kLoad, EnergyClass::kAlu, 1);
  EXPECT_GT(cross, same);  // ALU after LOAD pays a bigger circuit-state cost
}

TEST(IssPower, EnergyScalesWithVdd) {
  ElectricalParams lo{.vdd_volts = 1.65};
  ElectricalParams hi{.vdd_volts = 3.3};
  const auto ml = InstructionPowerModel::sparclite(lo);
  const auto mh = InstructionPowerModel::sparclite(hi);
  EXPECT_DOUBLE_EQ(
      mh.instruction_energy(EnergyClass::kAlu, EnergyClass::kAlu, 1) /
          ml.instruction_energy(EnergyClass::kAlu, EnergyClass::kAlu, 1),
      2.0);  // E = I * V * t: linear in Vdd at fixed current
}

// --- encoding ---------------------------------------------------------------

class EncodingRoundTrip : public ::testing::TestWithParam<Instruction> {};

TEST_P(EncodingRoundTrip, DecodeEncodeIdentity) {
  const Instruction ins = GetParam();
  EXPECT_EQ(decode(encode(ins)), ins) << disassemble(ins);
}

Instruction mk(Opcode op, unsigned rd, unsigned rs1, unsigned rs2,
               std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  return i;
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, EncodingRoundTrip,
    ::testing::Values(
        mk(Opcode::kNop, 0, 0, 0, 0), mk(Opcode::kHalt, 0, 0, 0, 0),
        mk(Opcode::kAdd, 5, 6, 7, 0), mk(Opcode::kMul, 31, 30, 29, 0),
        mk(Opcode::kMovI, 8, 0, 0, -32768),
        mk(Opcode::kAddI, 9, 10, 0, 32767),
        mk(Opcode::kLw, 4, 1, 0, -4), mk(Opcode::kSw, 0, 1, 9, 124),
        mk(Opcode::kSb, 0, 2, 11, 0),
        mk(Opcode::kBeq, 0, 3, 4, -100), mk(Opcode::kBge, 0, 21, 22, 255),
        mk(Opcode::kJ, 0, 0, 0, 12345), mk(Opcode::kJal, 30, 0, 0, 999),
        mk(Opcode::kJr, 0, 30, 0, 0)));

TEST(Assembler, ReportsUnknownMnemonic) {
  const AsmResult r = assemble("frobnicate r1, r2");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 1"), std::string::npos);
}

TEST(Assembler, ReportsBadOperands) {
  EXPECT_FALSE(assemble("add r1, r2").ok());
  EXPECT_FALSE(assemble("movi r99, 1").ok());
  EXPECT_FALSE(assemble("beq r1, r2, nowhere").ok());
}

TEST(Assembler, DuplicateLabelRejected) {
  const AsmResult r = assemble("x: nop\nx: nop");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("duplicate"), std::string::npos);
}

TEST(Assembler, CommentsAndBlankLines) {
  const AsmResult r = assemble(R"(
    ; full comment line
    nop    # trailing comment

    halt
  )");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program.size(), 2u);
}

TEST(Assembler, LabelArithmeticForwardAndBackward) {
  const AsmResult r = assemble(R"(
  top:
    beq r1, r2, bottom
    nop
    bne r1, r2, top
    nop
  bottom:
    halt
  )");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program[0].imm, 4);   // forward to halt
  EXPECT_EQ(r.program[2].imm, -2);  // back to top
}

TEST(Assembler, DisassembleReassembleIdentity) {
  const char* src = R"(
    movi r4, 100
    addi r5, r4, -1
    lw   r6, 8(r4)
    sw   r6, 12(r4)
    add  r7, r5, r6
    jr   r30
    nop
    halt
  )";
  const AsmResult first = assemble(src);
  ASSERT_TRUE(first.ok());
  std::string round;
  for (const auto& ins : first.program) round += disassemble(ins) + "\n";
  const AsmResult second = assemble(round);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_EQ(first.program, second.program);
}

}  // namespace
}  // namespace socpower::iss
