// Robustness: the DSL parser must reject arbitrary garbage gracefully
// (error string, no crash), and long co-estimation runs stay deterministic
// and bounded.
#include <gtest/gtest.h>

#include "cfsm/dsl.hpp"
#include "core/coestimator.hpp"
#include "systems/tcpip.hpp"
#include "util/rng.hpp"

namespace socpower {
namespace {

TEST(Robustness, ParserSurvivesRandomGarbage) {
  Rng rng(13);
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789(){};=,<>!&|^+-*/%~ \n\t";
  for (int trial = 0; trial < 300; ++trial) {
    std::string src;
    const std::size_t len = rng.below(200);
    for (std::size_t i = 0; i < len; ++i)
      src += alphabet[rng.below(sizeof(alphabet) - 1)];
    cfsm::Network net;
    const auto r = cfsm::parse_network(src, net);
    // Garbage essentially never parses; if it somehow does, the network
    // must at least validate.
    if (r.ok()) {
      EXPECT_TRUE(net.validate().empty());
    } else {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(Robustness, ParserSurvivesMutatedValidModels) {
  // Take a valid model and corrupt single characters: every mutation must
  // either parse cleanly or produce a located diagnostic.
  const std::string base = R"(
    event A, B;
    process p {
      input A; output B;
      var x = 1;
      if (present(A) && x < 100) { x = x * 2; emit B(x); }
    }
  )";
  Rng rng(21);
  for (int trial = 0; trial < 300; ++trial) {
    std::string src = base;
    const std::size_t pos = rng.below(src.size());
    src[pos] = static_cast<char>(32 + rng.below(95));
    cfsm::Network net;
    const auto r = cfsm::parse_network(src, net);
    if (!r.ok()) {
      EXPECT_NE(r.error.find("line"), std::string::npos);
    }
  }
}

TEST(Robustness, LongRunDeterministicAndLinear) {
  // 200 packets: results identical across two runs, and the reaction count
  // scales linearly with the workload (no hidden quadratic blowup).
  auto run_packets = [](int packets) {
    systems::TcpIpSystem sys({.num_packets = packets, .packet_bytes = 64,
                              .packet_gap = 40});
    core::CoEstimator est(&sys.network(), {});
    sys.configure(est);
    est.prepare();
    const auto r = est.run(sys.stimulus());
    EXPECT_EQ(sys.packets_ok(est), packets);
    return r;
  };
  const auto a = run_packets(200);
  const auto b = run_packets(200);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.end_time, b.end_time);
  const auto half = run_packets(100);
  const double ratio = static_cast<double>(a.reactions) /
                       static_cast<double>(half.reactions);
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(Robustness, ManyProcessesShareTheIssMemorySafely) {
  // 12 software processes: the linker must lay them all out within the ISS
  // memory, and each keeps independent state.
  std::string src = "event GO;\n";
  for (int i = 0; i < 12; ++i) {
    src += "process p" + std::to_string(i) + " { input GO; var v = " +
           std::to_string(i) + "; v = v + " + std::to_string(i + 1) +
           "; }\n";
  }
  cfsm::Network net;
  ASSERT_TRUE(cfsm::parse_network(src, net).ok());
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&net, cfg);
  for (int i = 0; i < 12; ++i)
    est.map_sw(net.cfsm_id("p" + std::to_string(i)), i);
  est.prepare();
  sim::Stimulus stim;
  stim.add(1, net.event_id("GO"));
  stim.add(100, net.event_id("GO"));
  const auto r = est.run(stim);
  EXPECT_FALSE(r.truncated);
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(est.process_state(net.cfsm_id("p" + std::to_string(i))).vars[0],
              i + 2 * (i + 1));
}

}  // namespace
}  // namespace socpower
