// The gate-level reaction cache must be bit-identical to the raw simulator:
// same per-cycle energies, toggle counts, net values and cycle counts, for
// any netlist and stimulus, across resets and forced-state writes. These
// tests run a cached and an uncached GateSim side by side over randomized
// register-feedback netlists (mirroring the ISS block-cache differential
// fuzz), exercise the targeted invalidation rules (capacity generation
// clear, sync_hw_vars de-anchoring, reset re-anchoring), and repeat the
// comparison end to end through the co-estimator — including the parallel
// batch flush. The release-safety satellites (cyclic-netlist abort, input
// bounds) regress here too.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "core/coestimator.hpp"
#include "core/estimators/hw_estimator.hpp"
#include "hw/gatesim.hpp"
#include "hw/netlist.hpp"
#include "hw/reaction_cache.hpp"
#include "hwsyn/rtl.hpp"
#include "hwsyn/synth.hpp"
#include "systems/tcpip.hpp"
#include "util/rng.hpp"

namespace socpower::hw {
namespace {

// -- random sequential netlist generator -------------------------------------

constexpr unsigned kWidth = 4;

ReactionCacheConfig cache_config(bool enabled, std::size_t max_entries) {
  ReactionCacheConfig cfg;
  cfg.enabled = enabled;
  cfg.max_entries = max_entries;
  return cfg;
}

struct RandomDesign {
  Netlist nl;
  std::vector<hwsyn::Word> regs;   // Q words, connected to random datapaths
  std::size_t n_inputs = 0;        // primary-input count
};

/// A random FSMD-shaped netlist: a few input words, a few register words,
/// and a random expression forest over them; every register feeds back on a
/// randomly chosen derived word, so state actually evolves with the data.
RandomDesign random_design(Rng& rng) {
  RandomDesign d;
  hwsyn::RtlBuilder rtl(&d.nl);
  std::vector<hwsyn::Word> pool;
  const std::size_t n_in = 2 + rng.below(2);
  for (std::size_t i = 0; i < n_in; ++i)
    pool.push_back(rtl.input_word("in" + std::to_string(i), kWidth));
  const std::size_t n_reg = 2 + rng.below(3);
  for (std::size_t i = 0; i < n_reg; ++i) {
    d.regs.push_back(
        rtl.reg_word(static_cast<std::uint32_t>(rng.below(16)), kWidth));
    pool.push_back(d.regs.back());
  }
  const std::size_t n_ops = 6 + rng.below(10);
  for (std::size_t i = 0; i < n_ops; ++i) {
    const hwsyn::Word& a = pool[rng.below(pool.size())];
    const hwsyn::Word& b = pool[rng.below(pool.size())];
    hwsyn::Word r;
    switch (rng.below(6)) {
      case 0: r = rtl.add(a, b); break;
      case 1: r = rtl.sub(a, b); break;
      case 2: r = rtl.word_xor(a, b); break;
      case 3: r = rtl.word_and(a, b); break;
      case 4: r = rtl.word_or(a, b); break;
      default: r = rtl.mux(rtl.eq(a, b), a, b); break;
    }
    pool.push_back(r);
  }
  for (const hwsyn::Word& q : d.regs) {
    // Feed back a word derived from state and inputs (never q itself alone,
    // which would freeze the register).
    const hwsyn::Word& src = pool[pool.size() - 1 - rng.below(n_ops)];
    rtl.connect_reg(q, rtl.word_xor(src, pool[rng.below(pool.size())]));
  }
  for (unsigned b = 0; b < kWidth; ++b)
    d.nl.mark_output(pool.back()[b], "out");
  EXPECT_EQ(d.nl.validate(), "");
  d.n_inputs = d.nl.primary_inputs().size();
  return d;
}

void expect_same_nets(const Netlist& nl, const GateSim& a, const GateSim& b) {
  for (std::size_t n = 0; n < nl.net_count(); ++n)
    ASSERT_EQ(a.net_value(static_cast<NetId>(n)),
              b.net_value(static_cast<NetId>(n)))
        << "net " << n << " diverged";
}

// -- multi-seed differential fuzz --------------------------------------------

class HwReactionCacheFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HwReactionCacheFuzz, CachedMatchesUncachedBitwise) {
  Rng rng(GetParam());
  RandomDesign d = random_design(rng);
  GateSim ref(&d.nl);
  GateSim sim(&d.nl);
  ReactionCache cache(&sim, cache_config(true, 256));

  // A small stimulus pool makes reactions repeat, so the cache actually
  // serves hits while the reference path re-simulates every cycle.
  std::vector<std::uint64_t> stimuli;
  for (int i = 0; i < 6; ++i) stimuli.push_back(rng.next());

  for (int step = 0; step < 400; ++step) {
    if (rng.chance(0.04)) {
      ref.reset();
      sim.reset();  // the cache re-anchors and may warm-hit old entries
    }
    if (rng.chance(0.04) && !d.regs.empty()) {
      // Forced register writes (what sync_hw_vars does) applied identically
      // to both simulators; the cached one must de-anchor, not corrupt.
      const hwsyn::Word& q = d.regs[rng.below(d.regs.size())];
      const NetId bit = q[rng.below(q.size())];
      const bool v = rng.chance(0.5);
      ref.force_net(bit, v);
      sim.force_net(bit, v);
    }
    const std::uint64_t vec = stimuli[rng.below(stimuli.size())];
    for (std::size_t i = 0; i < d.n_inputs; ++i) {
      ref.set_input(i, (vec >> (i & 63u)) & 1u);
      sim.set_input(i, (vec >> (i & 63u)) & 1u);
    }
    const CycleResult re = ref.step();
    const CycleResult ce = cache.step();
    ASSERT_EQ(re.energy, ce.energy) << "step " << step;  // bitwise
    ASSERT_EQ(re.toggles, ce.toggles) << "step " << step;
    if (step % 16 == 0) expect_same_nets(d.nl, ref, sim);
  }
  expect_same_nets(d.nl, ref, sim);
  EXPECT_EQ(ref.cycles_simulated(), sim.cycles_simulated());
  EXPECT_EQ(ref.total_energy(), sim.total_energy());  // bitwise
  // The stimulus pool repeats, so the cache must have replayed something
  // and skipped the corresponding gate evaluations.
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_LE(sim.gates_evaluated(), ref.gates_evaluated());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwReactionCacheFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// -- targeted invalidation / bounding cases ----------------------------------

/// 4-bit counter with an enable input: tiny, stateful, deterministic.
struct Counter {
  Netlist nl;
  hwsyn::Word q;
  std::size_t n_inputs = 0;

  Counter() {
    hwsyn::RtlBuilder rtl(&nl);
    const NetId en = nl.add_primary_input("en");
    q = rtl.reg_word(0, kWidth);
    const hwsyn::Word inc = rtl.add(q, rtl.constant(1, kWidth));
    rtl.connect_reg(q, rtl.mux(en, inc, q));
    for (unsigned b = 0; b < kWidth; ++b) nl.mark_output(q[b], "q");
    n_inputs = nl.primary_inputs().size();
  }
};

TEST(HwReactionCache, RepeatedReactionHitsAndStaysIdentical) {
  Counter c;
  GateSim ref(&c.nl);
  GateSim sim(&c.nl);
  ReactionCache cache(&sim, {});
  // The counter wraps every 16 enabled cycles, so once every (state, input)
  // pair has been memoized the rest of the run is all hits: 17 distinct keys
  // (the post-reset anchor state plus 16 wrapped states, which repeat from
  // cycle 18 on), then 47 replays.
  for (int i = 0; i < 64; ++i) {
    ref.set_input(0, true);
    sim.set_input(0, true);
    const CycleResult re = ref.step();
    const CycleResult ce = cache.step();
    ASSERT_EQ(re.energy, ce.energy);
    ASSERT_EQ(re.toggles, ce.toggles);
  }
  EXPECT_EQ(cache.stats().misses, 17u);
  EXPECT_EQ(cache.stats().hits, 47u);
  EXPECT_GT(cache.stats().skipped_gate_evals, 0u);
  EXPECT_EQ(ref.total_energy(), sim.total_energy());
  expect_same_nets(c.nl, ref, sim);
}

TEST(HwReactionCache, CapacityTriggersGenerationClear) {
  Counter c;
  GateSim ref(&c.nl);
  GateSim sim(&c.nl);
  ReactionCache cache(&sim, cache_config(true, 5));
  for (int i = 0; i < 64; ++i) {
    ref.set_input(0, true);
    sim.set_input(0, true);
    const CycleResult re = ref.step();
    const CycleResult ce = cache.step();
    ASSERT_EQ(re.energy, ce.energy);
  }
  // 17 distinct (state, input) keys cycle through a 5-entry table: the
  // generation clear must have fired, and correctness must not care.
  EXPECT_GT(cache.stats().capacity_clears, 0u);
  EXPECT_GT(cache.stats().evicted_entries, 0u);
  EXPECT_LE(cache.size(), 5u);
  EXPECT_EQ(ref.total_energy(), sim.total_energy());
  expect_same_nets(c.nl, ref, sim);
}

TEST(HwReactionCache, ResetReanchorsAndWarmHits) {
  Counter c;
  GateSim sim(&c.nl);
  ReactionCache cache(&sim, {});
  auto run_epoch = [&] {
    Joules total = 0.0;
    for (int i = 0; i < 16; ++i) {
      sim.set_input(0, true);
      total += cache.step().energy;
    }
    return total;
  };
  const Joules cold = run_epoch();
  const std::uint64_t misses_after_cold = cache.stats().misses;
  sim.reset();  // what run_flush does for a kNoPath (reset) batch entry
  const Joules warm = run_epoch();
  EXPECT_EQ(cold, warm);  // bitwise: replays reproduce the memoized doubles
  EXPECT_EQ(cache.stats().misses, misses_after_cold);  // all 16 were hits
  EXPECT_GE(cache.stats().hits, 16u);
}

TEST(HwReactionCache, DisabledBypassesAndStaysIdentical) {
  Counter c;
  GateSim ref(&c.nl);
  GateSim sim(&c.nl);
  ReactionCache cache(&sim, cache_config(false, 64));
  for (int i = 0; i < 20; ++i) {
    ref.set_input(0, true);
    sim.set_input(0, true);
    ASSERT_EQ(ref.step().energy, cache.step().energy);
  }
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().bypassed, 20u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(HwReactionCache, SyncHwVarsInvalidatesUntilReset) {
  // Synthesized CFSM (v += 1 per TRIG) — the real sync_hw_vars protocol.
  cfsm::Network net;
  cfsm::Cfsm& c = net.add_cfsm("t");
  const cfsm::EventId trig = net.declare_event("TRIG");
  c.add_input(trig);
  const auto v = c.add_var("v");
  auto& g = c.graph();
  auto& a = c.arena();
  g.set_root(g.add_assign(
      v, a.binary(cfsm::ExprOp::kAdd, a.variable(v), a.constant(1)),
      g.add_end()));
  const hwsyn::HwImage img = hwsyn::synthesize_cfsm(c);
  GateSim ref(img.netlist.get());
  GateSim sim(img.netlist.get());
  ReactionCache cache(&sim, {});
  cfsm::ReactionInputs in;
  in.set(trig, 0);

  auto step_both = [&] {
    hwsyn::stage_hw_reaction(ref, img, in);
    hwsyn::stage_hw_reaction(sim, img, in);
    const CycleResult re = ref.step();
    const CycleResult ce = cache.step();
    ASSERT_EQ(re.energy, ce.energy);
    ASSERT_EQ(re.toggles, ce.toggles);
  };

  for (int i = 0; i < 4; ++i) step_both();
  EXPECT_EQ(cache.stats().invalidations, 0u);

  // Resynchronize the registers to a foreign state (as the master does after
  // acceleration skipped some reactions): the cache must de-anchor...
  cfsm::CfsmState st = c.make_state();
  st.vars[0] = 1000;
  hwsyn::sync_hw_vars(ref, img, st);
  hwsyn::sync_hw_vars(sim, img, st);
  const std::uint64_t hits_before = cache.stats().hits;
  for (int i = 0; i < 4; ++i) step_both();
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().hits, hits_before);  // bypassing, not hitting
  EXPECT_GE(cache.stats().bypassed, 4u);
  EXPECT_EQ(hwsyn::read_hw_var(ref, img, 0), 1004);
  EXPECT_EQ(hwsyn::read_hw_var(sim, img, 0), 1004);

  // ...and a no-op resync (states already equal: zero nets flip) must NOT
  // de-anchor — force_net only trips the flag on an actual change.
  st.vars[0] = hwsyn::read_hw_var(sim, img, 0);
  hwsyn::sync_hw_vars(ref, img, st);
  hwsyn::sync_hw_vars(sim, img, st);
  for (int i = 0; i < 2; ++i) step_both();
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // reset() re-anchors: the first epoch's reactions replay as warm hits.
  ref.reset();
  sim.reset();
  for (int i = 0; i < 4; ++i) step_both();
  EXPECT_GT(cache.stats().hits, hits_before);
  expect_same_nets(*img.netlist, ref, sim);
}

// -- end-to-end through the co-estimator --------------------------------------

core::RunResults run_tcpip(bool cache_on, unsigned flush_threads,
                           bool accelerate_hw,
                           hw::ReactionCacheStats* stats_out = nullptr) {
  systems::TcpIpParams p;
  p.num_packets = 3;
  p.packet_bytes = 64;
  p.ip_check_in_hw = true;  // two gate-level ASICs
  systems::TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  cfg.hw_reaction_cache = cache_on;
  cfg.hw_flush_threads = flush_threads;
  if (accelerate_hw) {
    cfg.accel = core::Acceleration::kCaching;
    cfg.accelerate_hw = true;  // exercises sync_hw_vars resyncs end to end
  }
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const core::RunResults r = est.run(sys.stimulus());
  if (stats_out) {
    for (const core::ComponentEstimator* b : est.backends())
      if (const auto* hb = dynamic_cast<const core::HwEstimatorBase*>(b)) {
        const hw::ReactionCacheStats s = hb->reaction_cache_stats();
        stats_out->hits += s.hits;
        stats_out->misses += s.misses;
        stats_out->bypassed += s.bypassed;
        stats_out->invalidations += s.invalidations;
        stats_out->skipped_gate_evals += s.skipped_gate_evals;
      }
  }
  return r;
}

void expect_identical_runs(const core::RunResults& off,
                           const core::RunResults& on) {
  EXPECT_EQ(off.total_energy, on.total_energy);  // bitwise throughout
  EXPECT_EQ(off.cpu_energy, on.cpu_energy);
  EXPECT_EQ(off.hw_energy, on.hw_energy);
  EXPECT_EQ(off.bus_energy, on.bus_energy);
  EXPECT_EQ(off.cache_energy, on.cache_energy);
  EXPECT_EQ(off.end_time, on.end_time);
  EXPECT_EQ(off.reactions, on.reactions);
  EXPECT_EQ(off.hw_reactions, on.hw_reactions);
  EXPECT_EQ(off.gate_sim_cycles, on.gate_sim_cycles);
  ASSERT_EQ(off.process_energy.size(), on.process_energy.size());
  for (std::size_t i = 0; i < off.process_energy.size(); ++i)
    EXPECT_EQ(off.process_energy[i], on.process_energy[i]);
}

TEST(HwReactionCacheEndToEnd, CoEstimationBitIdenticalOnVsOff) {
  hw::ReactionCacheStats stats;
  const core::RunResults off = run_tcpip(false, 1, false);
  const core::RunResults on = run_tcpip(true, 1, false, &stats);
  expect_identical_runs(off, on);
  EXPECT_GT(stats.hits, 0u);  // the acceptance-criterion nonzero hit rate
  EXPECT_GT(stats.skipped_gate_evals, 0u);
}

TEST(HwReactionCacheEndToEnd, AccelerateHwResyncsStayIdentical) {
  // accelerate_hw skips gate reactions and resynchronizes registers with
  // sync_hw_vars — the forced-write de-anchor path, end to end.
  hw::ReactionCacheStats stats;
  const core::RunResults off = run_tcpip(false, 1, true);
  const core::RunResults on = run_tcpip(true, 1, true, &stats);
  expect_identical_runs(off, on);
}

TEST(HwReactionCacheEndToEnd, ParallelFlushDeterministicWithCache) {
  const core::RunResults t1 = run_tcpip(true, 1, false);
  const core::RunResults t4 = run_tcpip(true, 4, false);
  expect_identical_runs(t1, t4);
}

TEST(HwReactionCacheEndToEnd, SecondRunWarmHitsAndMatches) {
  systems::TcpIpParams p;
  p.num_packets = 3;
  p.packet_bytes = 64;
  p.ip_check_in_hw = true;
  systems::TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const core::RunResults r1 = est.run(sys.stimulus());
  const core::RunResults r2 = est.run(sys.stimulus());
  expect_identical_runs(r1, r2);
  // The table survives begin_run (only the per-run knobs are re-read), so
  // the second run replays the first run's reactions.
  hw::ReactionCacheStats stats;
  for (const core::ComponentEstimator* b : est.backends())
    if (const auto* hb = dynamic_cast<const core::HwEstimatorBase*>(b)) {
      const hw::ReactionCacheStats s = hb->reaction_cache_stats();
      stats.hits += s.hits;
      stats.misses += s.misses;
    }
  EXPECT_GT(stats.hits, stats.misses);
}

// -- release-safety satellites -------------------------------------------------

TEST(GateSimBounds, OutOfRangeInputWritesDropAndCount) {
  // Regression: set_input() used to be assert-only (unchecked indexing under
  // NDEBUG). It must be checked in every build type: the write is dropped
  // and counted, in-range writes still land.
  Counter c;
  GateSim sim(&c.nl);
  sim.set_input_word(0, 0xFF, 8);  // 1 real input; 7 writes out of range
  EXPECT_EQ(sim.dropped_input_writes(), 7u);
  sim.step();
  EXPECT_EQ(sim.read_word(0, kWidth), 1u);  // the in-range enable applied
  sim.set_input(99, true);
  EXPECT_EQ(sim.dropped_input_writes(), 8u);
}

TEST(GateSimBounds, ReadWordClampsOutOfRangeBitsToZero) {
  Counter c;  // 4 marked outputs
  GateSim sim(&c.nl);
  sim.set_input(0, true);
  for (int i = 0; i < 3; ++i) sim.step();
  const std::uint32_t q = sim.read_word(0, kWidth);
  EXPECT_EQ(q, 3u);
  // Asking for more bits than exist must return the same value with the
  // excess bits read as 0, not walk past the output table.
  EXPECT_EQ(sim.read_word(0, 32), q);
  EXPECT_EQ(sim.read_word(kWidth + 10, 8), 0u);
}

TEST(GateSimDeath, CombinationalCycleAbortsInAllBuilds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two inverters in a ring, built via the forward-reference constructor.
  // GateSim must refuse the netlist in every build type (under NDEBUG the
  // old assert vanished and the simulator silently produced garbage).
  Netlist nl;
  const NetId x = nl.add_net();
  const NetId y = nl.add_gate(GateType::kInv, x);
  nl.add_gate_driving(x, GateType::kInv, y);
  EXPECT_DEATH({ GateSim sim(&nl); }, "combinational cycle");
}

}  // namespace
}  // namespace socpower::hw
