// The pluggable-backend seams: EstimatorRegistry lookup/registration,
// CoEstimatorConfig::validate() rejection paths, the structural-mutation
// guard, and the backends() introspection of a prepared estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/coestimator.hpp"
#include "core/estimators/registry.hpp"
#include "core/estimators/sw_iss_estimator.hpp"
#include "systems/tcpip.hpp"

namespace socpower::core {
namespace {

systems::TcpIpParams small_params() {
  systems::TcpIpParams p;
  p.num_packets = 2;
  p.packet_bytes = 32;
  p.ip_check_in_hw = true;
  p.seed = 11;
  return p;
}

bool contains_substr(const std::vector<std::string>& errs,
                     const std::string& needle) {
  return std::any_of(errs.begin(), errs.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

// ---- registry --------------------------------------------------------------

TEST(EstimatorBackends, RegistryHasBuiltins) {
  EstimatorRegistry& reg = estimator_registry();
  for (const char* name :
       {"sw.iss", "hw.gate", "hw.rtl", "cache.icache", "bus.arbiter"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    auto backend = reg.create(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
  }
  const std::vector<std::string> names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(reg.joined_names().find("sw.iss"), std::string::npos);
}

TEST(EstimatorBackends, RegistryUnknownNameIsNull) {
  EXPECT_FALSE(estimator_registry().contains("sw.nope"));
  EXPECT_EQ(estimator_registry().create("sw.nope"), nullptr);
}

TEST(EstimatorBackends, CustomRegistrationSelectsByName) {
  // An alternate software backend plugs in by name only; here it is the
  // stock ISS under an alias, so results must match the default selection
  // exactly.
  estimator_registry().register_backend(
      "test.sw.alias", [] { return std::make_unique<SwIssEstimator>(); });
  ASSERT_TRUE(estimator_registry().contains("test.sw.alias"));

  RunResults base, aliased;
  {
    systems::TcpIpSystem sys(small_params());
    CoEstimator est(&sys.network());
    sys.configure(est);
    est.prepare();
    base = est.run(sys.stimulus());
  }
  {
    systems::TcpIpSystem sys(small_params());
    CoEstimatorConfig cfg;
    cfg.estimators.sw = "test.sw.alias";
    CoEstimator est(&sys.network(), cfg);
    sys.configure(est);
    est.prepare();
    aliased = est.run(sys.stimulus());
  }
  EXPECT_EQ(aliased.total_energy, base.total_energy);
  EXPECT_EQ(aliased.cpu_energy, base.cpu_energy);
  EXPECT_EQ(aliased.end_time, base.end_time);
  EXPECT_EQ(aliased.iss_invocations, base.iss_invocations);
  EXPECT_EQ(aliased.iss_instructions, base.iss_instructions);
}

TEST(EstimatorBackends, ReRegistrationReplacesFactory) {
  int calls = 0;
  estimator_registry().register_backend("test.counted", [&calls] {
    ++calls;
    return std::make_unique<SwIssEstimator>();
  });
  (void)estimator_registry().create("test.counted");
  EXPECT_EQ(calls, 1);
  estimator_registry().register_backend(
      "test.counted", [] { return std::make_unique<SwIssEstimator>(); });
  (void)estimator_registry().create("test.counted");
  EXPECT_EQ(calls, 1);  // replaced factory no longer runs the old lambda
}

// ---- config validation -----------------------------------------------------

TEST(EstimatorBackends, ValidateAcceptsDefaults) {
  EXPECT_TRUE(CoEstimatorConfig{}.validate().empty());
}

TEST(EstimatorBackends, ValidateRejectsBadElectricals) {
  CoEstimatorConfig cfg;
  cfg.electrical.vdd_volts = 0.0;
  cfg.data_nj_per_toggle = -1.0;
  const auto errs = cfg.validate();
  EXPECT_TRUE(contains_substr(errs, "vdd_volts"));
  EXPECT_TRUE(contains_substr(errs, "data_nj_per_toggle"));
}

TEST(EstimatorBackends, ValidateRejectsZeroWidthBus) {
  CoEstimatorConfig cfg;
  cfg.bus.data_bits = 0;
  cfg.bus.addr_bits = 0;
  const auto errs = cfg.validate();
  EXPECT_TRUE(contains_substr(errs, "bus.data_bits"));
  EXPECT_TRUE(contains_substr(errs, "bus.addr_bits"));
}

TEST(EstimatorBackends, ValidateRejectsBadIssAndCache) {
  CoEstimatorConfig cfg;
  cfg.iss.memory_bytes = 0;
  cfg.icache.size_bytes = 0;
  const auto errs = cfg.validate();
  EXPECT_TRUE(contains_substr(errs, "iss.memory_bytes"));
  EXPECT_TRUE(contains_substr(errs, "icache geometry"));
}

TEST(EstimatorBackends, ValidateRejectsBadSampling) {
  CoEstimatorConfig cfg;
  cfg.sampling.keep_ratio = 0.0;
  cfg.sampling.k_memory = 0;
  const auto errs = cfg.validate();
  EXPECT_TRUE(contains_substr(errs, "keep_ratio"));
  EXPECT_TRUE(contains_substr(errs, "k_memory"));
}

TEST(EstimatorBackends, ValidateRejectsDeadFlushParallelism) {
  CoEstimatorConfig cfg;
  cfg.hw_batch = false;
  cfg.hw_flush_threads = 4;
  EXPECT_TRUE(contains_substr(cfg.validate(), "hw_flush_threads"));
  cfg.hw_batch = true;
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(EstimatorBackends, ValidateRejectsUnknownBackendName) {
  CoEstimatorConfig cfg;
  cfg.estimators.cache = "cache.imaginary";
  const auto errs = cfg.validate();
  EXPECT_TRUE(contains_substr(errs, "cache.imaginary"));
  EXPECT_TRUE(contains_substr(errs, "cache.icache"));  // known-name list
}

// ---- prepare()/run() enforcement (aborts fire in every build type) ---------

using EstimatorBackendsDeathTest = ::testing::Test;

TEST(EstimatorBackendsDeathTest, PrepareAbortsOnInvalidConfig) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  systems::TcpIpSystem sys(small_params());
  CoEstimatorConfig cfg;
  cfg.bus.data_bits = 0;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  EXPECT_DEATH(est.prepare(), "invalid config");
}

TEST(EstimatorBackendsDeathTest, PrepareAbortsOnUnknownBackend) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  systems::TcpIpSystem sys(small_params());
  CoEstimatorConfig cfg;
  cfg.estimators.sw = "sw.remote-iss";
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  EXPECT_DEATH(est.prepare(), "not registered");
}

TEST(EstimatorBackendsDeathTest, StructuralMutationAfterPrepareAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  systems::TcpIpSystem sys(small_params());
  CoEstimator est(&sys.network());
  sys.configure(est);
  est.prepare();
  est.config().iss.memory_bytes *= 2;  // structural: baked into the ISS
  EXPECT_DEATH(est.run(sys.stimulus()), "structural");
}

TEST(EstimatorBackendsDeathTest, BackendSwapAfterPrepareAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  systems::TcpIpSystem sys(small_params());
  CoEstimator est(&sys.network());
  sys.configure(est);
  est.prepare();
  est.config().estimators.hw_gate = "hw.rtl";
  EXPECT_DEATH(est.run(sys.stimulus()), "structural");
}

TEST(EstimatorBackends, PerRunKnobsStayMutable) {
  // The documented contract: everything not marked [structural] may change
  // between runs on the same instance.
  systems::TcpIpSystem sys(small_params());
  CoEstimator est(&sys.network());
  sys.configure(est);
  est.prepare();
  const RunResults plain = est.run(sys.stimulus());
  est.config().accel = Acceleration::kCaching;
  est.config().hw_flush_threads = 2;
  const RunResults cached = est.run(sys.stimulus());
  EXPECT_EQ(cached.total_energy, plain.total_energy);
  EXPECT_LE(cached.iss_invocations, plain.iss_invocations);
  est.config().accel = Acceleration::kNone;
  const RunResults again = est.run(sys.stimulus());
  EXPECT_EQ(again.iss_invocations, plain.iss_invocations);
}

// ---- introspection ---------------------------------------------------------

TEST(EstimatorBackends, BackendsListRolesAfterPrepare) {
  systems::TcpIpParams p = small_params();
  p.checksum_rtl_estimator = true;  // mixed: gate + RTL units present
  systems::TcpIpSystem sys(p);
  CoEstimator est(&sys.network());
  sys.configure(est);
  EXPECT_TRUE(est.backends().empty());  // built at prepare()
  est.prepare();
  std::vector<std::string> names;
  for (const ComponentEstimator* b : est.backends())
    names.emplace_back(b->name());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"bus.arbiter", "cache.icache",
                                             "hw.gate", "hw.rtl", "sw.iss"}));
  // Process backends own disjoint, non-empty component sets; resource
  // backends own none.
  for (const ComponentEstimator* b : est.backends()) {
    const auto ids = b->component_ids();
    if (b->name() == "bus.arbiter" || b->name() == "cache.icache")
      EXPECT_TRUE(ids.empty()) << b->name();
    else
      EXPECT_FALSE(ids.empty()) << b->name();
  }
}

}  // namespace
}  // namespace socpower::core
