// Acceleration-technique unit tests: the energy/delay cache (Section 4.2),
// the macro-model library and parameter file (Section 4.1), and the
// K-memory sequence compactor (Section 4.3).
#include <gtest/gtest.h>

#include <vector>

#include "core/compactor.hpp"
#include "core/energy_cache.hpp"
#include "core/macromodel.hpp"
#include "swsyn/macro_op.hpp"
#include "util/rng.hpp"

namespace socpower::core {
namespace {

using swsyn::MacroOp;

TEST(EnergyCache, ColdLookupMisses) {
  EnergyCache c;
  EXPECT_FALSE(c.lookup(0, 0).has_value());
}

TEST(EnergyCache, ServesAfterThresholdCalls) {
  EnergyCache c({.thresh_variance = 0.0, .thresh_iss_calls = 3});
  c.record(1, 2, 100, 5e-9);
  c.record(1, 2, 100, 5e-9);
  EXPECT_FALSE(c.lookup(1, 2).has_value());  // only 2 calls
  c.record(1, 2, 100, 5e-9);
  const auto hit = c.lookup(1, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->cycles, 100.0);
  EXPECT_DOUBLE_EQ(hit->energy, 5e-9);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.simulations(), 3u);
}

TEST(EnergyCache, VarianceThresholdBlocksUnstablePaths) {
  EnergyCache c({.thresh_variance = 1e-6, .thresh_iss_calls = 2});
  c.record(0, 0, 100, 1e-9);
  c.record(0, 0, 100, 9e-9);  // wildly different energy
  EXPECT_FALSE(c.lookup(0, 0).has_value());
  // A generous threshold admits it.
  EnergyCache loose({.thresh_variance = 10.0, .thresh_iss_calls = 2});
  loose.record(0, 0, 100, 1e-9);
  loose.record(0, 0, 100, 9e-9);
  const auto hit = loose.lookup(0, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->energy, 5e-9);  // mean of observations
}

TEST(EnergyCache, KeysAreTaskAndPath) {
  EnergyCache c({.thresh_variance = 0.0, .thresh_iss_calls = 1});
  c.record(1, 1, 10, 1e-9);
  c.record(1, 2, 20, 2e-9);
  c.record(2, 1, 30, 3e-9);
  EXPECT_DOUBLE_EQ(c.lookup(1, 1)->cycles, 10.0);
  EXPECT_DOUBLE_EQ(c.lookup(1, 2)->cycles, 20.0);
  EXPECT_DOUBLE_EQ(c.lookup(2, 1)->cycles, 30.0);
  EXPECT_EQ(c.entries(), 3u);
}

TEST(EnergyCache, MeanIgnoresEligibility) {
  EnergyCache c({.thresh_variance = 0.0, .thresh_iss_calls = 100});
  c.record(0, 0, 10, 4e-9);
  EXPECT_FALSE(c.lookup(0, 0).has_value());
  const auto m = c.mean(0, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->energy, 4e-9);
  EXPECT_EQ(c.hits(), 0u);  // mean() is not a hit
}

TEST(EnergyCache, EnergyStatsExposedForHistograms) {
  EnergyCache c;
  c.record(3, 7, 5, 1e-9);
  c.record(3, 7, 5, 3e-9);
  const auto* stats = c.energy_stats(3, 7);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), 2u);
  EXPECT_DOUBLE_EQ(stats->mean(), 2e-9);
  EXPECT_EQ(c.energy_stats(9, 9), nullptr);
}

TEST(EnergyCache, ClearEmptiesEverything) {
  EnergyCache c({.thresh_variance = 0.0, .thresh_iss_calls = 1});
  c.record(0, 0, 1, 1e-9);
  (void)c.lookup(0, 0);
  c.clear();
  EXPECT_EQ(c.entries(), 0u);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_FALSE(c.lookup(0, 0).has_value());
}

// --- macro-model -------------------------------------------------------------

TEST(MacroModel, CharacterizationProducesPositiveCosts) {
  const auto lib = MacroModelLibrary::characterize(
      iss::InstructionPowerModel::sparclite());
  // Every op except the degenerate TEND must have nonzero delay and energy.
  for (std::size_t i = 0; i < swsyn::kNumMacroOps; ++i) {
    const auto op = static_cast<MacroOp>(i);
    if (op == MacroOp::kTend) continue;
    EXPECT_GT(lib.cost(op).cycles, 0.0) << swsyn::macro_op_name(op);
    EXPECT_GT(lib.cost(op).energy, 0.0) << swsyn::macro_op_name(op);
    EXPECT_GT(lib.cost(op).size_bytes, 0u) << swsyn::macro_op_name(op);
  }
}

TEST(MacroModel, RelativeCostOrdering) {
  const auto lib = MacroModelLibrary::characterize(
      iss::InstructionPowerModel::sparclite());
  // Event emission (8-instruction sequence) costs more than an assignment;
  // a multiply costs more than an add (3-cycle multiplier).
  EXPECT_GT(lib.cost(MacroOp::kAemit).cycles, lib.cost(MacroOp::kAvv).cycles);
  EXPECT_GT(lib.cost(MacroOp::kMul).cycles, lib.cost(MacroOp::kAdd).cycles);
  // Wide constants need the two-instruction form.
  EXPECT_GT(lib.cost(MacroOp::kConstW).cycles,
            lib.cost(MacroOp::kConst).cycles);
}

TEST(MacroModel, EstimateIsAdditive) {
  const auto lib = MacroModelLibrary::characterize(
      iss::InstructionPowerModel::sparclite());
  const std::vector<MacroOp> stream = {MacroOp::kRVar, MacroOp::kConst,
                                       MacroOp::kAdd, MacroOp::kAvv,
                                       MacroOp::kTend};
  const auto est = lib.estimate(stream);
  double cycles = 0;
  Joules energy = 0;
  for (const auto op : stream) {
    cycles += lib.cost(op).cycles;
    energy += lib.cost(op).energy;
  }
  EXPECT_DOUBLE_EQ(est.cycles, cycles);
  EXPECT_DOUBLE_EQ(est.energy, energy);
}

TEST(MacroModel, ParameterFileRoundTrip) {
  const auto lib = MacroModelLibrary::characterize(
      iss::InstructionPowerModel::sparclite());
  const std::string text = lib.to_parameter_file();
  // Header must match the Figure 3 format.
  EXPECT_NE(text.find(".unit_time cycle"), std::string::npos);
  EXPECT_NE(text.find(".unit_energy nJ"), std::string::npos);
  EXPECT_NE(text.find(".time AVV "), std::string::npos);
  EXPECT_NE(text.find(".energy AEMIT "), std::string::npos);

  std::string error;
  const auto parsed = MacroModelLibrary::from_parameter_file(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  for (std::size_t i = 0; i < swsyn::kNumMacroOps; ++i) {
    const auto op = static_cast<MacroOp>(i);
    EXPECT_NEAR(parsed->cost(op).cycles, lib.cost(op).cycles, 1e-9);
    EXPECT_NEAR(parsed->cost(op).energy, lib.cost(op).energy,
                lib.cost(op).energy * 1e-5 + 1e-18);
    EXPECT_EQ(parsed->cost(op).size_bytes, lib.cost(op).size_bytes);
  }
}

TEST(MacroModel, ParameterFileRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(MacroModelLibrary::from_parameter_file(".bogus X 1", &error)
                   .has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(
      MacroModelLibrary::from_parameter_file(".time NOSUCHOP 5", &error)
          .has_value());
  EXPECT_FALSE(
      MacroModelLibrary::from_parameter_file(".unit_time second", &error)
          .has_value());
}

// --- sequence compactor -------------------------------------------------------

TEST(Compactor, KeepsEverythingBelowMinLength) {
  SequenceCompactor c({.k_memory = 64, .keep_ratio = 0.25, .window = 4,
                       .min_length = 8});
  const std::vector<std::uint32_t> s = {1, 2, 3};
  const auto kept = c.select(s);
  EXPECT_EQ(kept.size(), 3u);
}

TEST(Compactor, KeepRatioOneIsIdentity) {
  SequenceCompactor c({.k_memory = 64, .keep_ratio = 1.0, .window = 4,
                       .min_length = 1});
  std::vector<std::uint32_t> s(40);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<std::uint32_t>(i);
  const auto kept = c.select(s);
  EXPECT_EQ(kept.size(), s.size());
}

TEST(Compactor, SelectsRequestedFraction) {
  SequenceCompactor c({.k_memory = 64, .keep_ratio = 0.25, .window = 4,
                       .min_length = 8});
  std::vector<std::uint32_t> s(64, 7);
  const auto kept = c.select(s);
  EXPECT_EQ(kept.size(), 16u);  // 0.25 * 64, in windows of 4
  // Indices sorted and unique.
  for (std::size_t i = 1; i < kept.size(); ++i)
    EXPECT_LT(kept[i - 1], kept[i]);
}

TEST(Compactor, PreservesUnigramDistribution) {
  // 75% zeros, 25% ones, block-structured.
  std::vector<std::uint32_t> s;
  for (int i = 0; i < 16; ++i) {
    s.insert(s.end(), {0, 0, 0, 1});
  }
  SequenceCompactor c({.k_memory = 64, .keep_ratio = 0.25, .window = 4,
                       .min_length = 8});
  const auto kept = c.select(s);
  EXPECT_LT(SequenceCompactor::unigram_distance(s, kept), 0.05);
}

TEST(Compactor, PreservesBigramsBetterThanStride) {
  // Alternating pattern: bigrams (0,1) and (1,0) dominate. Window-based
  // selection keeps them; a stride-2 subsample would destroy them.
  std::vector<std::uint32_t> s;
  for (int i = 0; i < 64; ++i) s.push_back(static_cast<std::uint32_t>(i % 2));
  SequenceCompactor c({.k_memory = 64, .keep_ratio = 0.25, .window = 4,
                       .min_length = 8});
  const auto kept = c.select(s);
  EXPECT_LT(SequenceCompactor::bigram_distance(s, kept), 0.1);
  std::vector<std::size_t> stride;
  for (std::size_t i = 0; i < s.size(); i += 2) stride.push_back(i);
  // The strided subsample has NO adjacent pairs at all -> distance 2.
  EXPECT_GT(SequenceCompactor::bigram_distance(s, stride), 1.0);
}

TEST(Compactor, SkewedMixtureKeptProportionally) {
  Rng rng(5);
  std::vector<std::uint32_t> s;
  for (int i = 0; i < 128; ++i)
    s.push_back(rng.chance(0.9) ? 10u : 20u);
  SequenceCompactor c({.k_memory = 128, .keep_ratio = 0.25, .window = 4,
                       .min_length = 8});
  const auto kept = c.select(s);
  EXPECT_LT(SequenceCompactor::unigram_distance(s, kept), 0.15);
}

TEST(DynamicCompaction, BootstrapSimulatesFirstBuffer) {
  DynamicCompactionStream d({.k_memory = 8, .keep_ratio = 0.25, .window = 2,
                             .min_length = 4});
  int simulated_first = 0;
  for (int i = 0; i < 8; ++i)
    if (d.feed(static_cast<std::uint32_t>(i % 2))) ++simulated_first;
  EXPECT_EQ(simulated_first, 8);  // no statistics yet: simulate everything
  int simulated_second = 0;
  for (int i = 0; i < 8; ++i)
    if (d.feed(static_cast<std::uint32_t>(i % 2))) ++simulated_second;
  EXPECT_LT(simulated_second, 8);  // the keep pattern now thins the stream
  EXPECT_EQ(d.fed(), 16u);
  EXPECT_EQ(d.simulated(), static_cast<std::uint64_t>(8 + simulated_second));
}

TEST(Compactor, StaticBeatsDynamicOnNonstationarySequences) {
  // "Clearly, static compaction is more powerful than dynamic compaction
  // since we are allowed to observe and manipulate the entire original
  // sequence" (Section 4.3). A sequence whose distribution shifts midway
  // defeats the dynamic scheme (each buffer's keep pattern is derived from
  // the PREVIOUS buffer), while static selection sees everything.
  std::vector<std::uint32_t> s;
  for (int i = 0; i < 128; ++i) s.push_back(1);  // phase 1
  for (int i = 0; i < 128; ++i) s.push_back(2);  // phase 2: all-new symbols
  const CompactionParams params{.k_memory = 64, .keep_ratio = 0.25,
                                .window = 4, .min_length = 8};

  SequenceCompactor stat(params);
  const auto static_kept = stat.select(s);  // whole trace at once

  DynamicCompactionStream dyn(params);
  std::vector<std::size_t> dynamic_kept;
  for (std::size_t i = 0; i < s.size(); ++i)
    if (dyn.feed(s[i])) dynamic_kept.push_back(i);

  const double d_static = SequenceCompactor::unigram_distance(s, static_kept);
  const double d_dynamic =
      SequenceCompactor::unigram_distance(s, dynamic_kept);
  EXPECT_LE(d_static, d_dynamic + 1e-12);
  EXPECT_LT(d_static, 0.05);  // static nails the 50/50 mixture
}

TEST(DynamicCompaction, LongRunConvergesToKeepRatio) {
  DynamicCompactionStream d({.k_memory = 32, .keep_ratio = 0.25, .window = 4,
                             .min_length = 8});
  Rng rng(11);
  for (int i = 0; i < 3200; ++i) d.feed(static_cast<std::uint32_t>(rng.below(4)));
  const double frac =
      static_cast<double>(d.simulated()) / static_cast<double>(d.fed());
  EXPECT_LT(frac, 0.35);  // bootstrap buffer amortizes away
  EXPECT_GT(frac, 0.15);
}

}  // namespace
}  // namespace socpower::core
