// Transition-trace recorder and system-inventory tests.
#include <gtest/gtest.h>

#include "core/inventory.hpp"
#include "core/transition_trace.hpp"
#include "systems/tcpip.hpp"

namespace socpower::core {
namespace {

TEST(TransitionTrace, CapturesEveryTransitionInOrder) {
  systems::TcpIpSystem sys({.num_packets = 2, .packet_bytes = 16});
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  TransitionTrace trace;
  est.set_transition_hook(trace.hook());
  const auto r = est.run(sys.stimulus());
  EXPECT_EQ(trace.records().size(), r.reactions);
  EXPECT_EQ(trace.dropped(), 0u);
  // Per-task extraction is time ordered.
  const auto cp = trace.for_task(sys.create_pack());
  ASSERT_FALSE(cp.empty());
  for (std::size_t i = 1; i < cp.size(); ++i)
    EXPECT_GE(cp[i].time, cp[i - 1].time);
  for (const auto& rec : cp) EXPECT_EQ(rec.task, sys.create_pack());
}

TEST(TransitionTrace, CapacityBoundsMemory) {
  systems::TcpIpSystem sys({.num_packets = 4, .packet_bytes = 64});
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  TransitionTrace trace(/*capacity=*/10);
  est.set_transition_hook(trace.hook());
  est.run(sys.stimulus());
  EXPECT_EQ(trace.records().size(), 10u);
  EXPECT_GT(trace.dropped(), 0u);
  const std::string text = trace.render(sys.network());
  EXPECT_NE(text.find("records dropped"), std::string::npos);
}

TEST(TransitionTrace, RenderAndCsvNameProcesses) {
  systems::TcpIpSystem sys({.num_packets = 1, .packet_bytes = 8});
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  TransitionTrace trace;
  est.set_transition_hook(trace.hook());
  est.run(sys.stimulus());
  const std::string text = trace.render(sys.network(), 1000);
  EXPECT_NE(text.find("create_pack"), std::string::npos);
  EXPECT_NE(text.find("simulated"), std::string::npos);
  const std::string csv = trace.to_csv(sys.network());
  EXPECT_EQ(csv.rfind("time,process,path,cycles,energy_nJ,simulated", 0), 0u);
  // One CSV data row per record.
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows), trace.records().size() + 1);
}

TEST(TransitionTrace, MarksAcceleratedTransitionsAsEstimated) {
  systems::TcpIpSystem sys({.num_packets = 6, .packet_bytes = 32});
  CoEstimatorConfig cfg;
  cfg.accel = Acceleration::kMacroModel;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  TransitionTrace trace;
  est.set_transition_hook(trace.hook());
  est.run(sys.stimulus());
  bool any_estimated = false, any_simulated = false;
  for (const auto& r : trace.records()) {
    if (r.simulated) any_simulated = true;  // HW still gate-simulated
    else any_estimated = true;              // SW macro-modeled
  }
  EXPECT_TRUE(any_estimated);
  EXPECT_TRUE(any_simulated);
}

TEST(Inventory, ReportsBothImplementationStyles) {
  systems::TcpIpSystem sys({.num_packets = 1});
  CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const SystemInventory inv = take_inventory(sys.network(), est);
  ASSERT_EQ(inv.processes.size(), sys.network().cfsm_count());
  for (const auto& p : inv.processes) {
    EXPECT_GT(p.sgraph_nodes, 0u);
    if (p.is_sw) {
      EXPECT_GT(p.code_bytes, 0u);
      EXPECT_GT(p.static_paths, 0u);
      EXPECT_EQ(p.gates, 0u);
    } else {
      EXPECT_GT(p.gates, 0u);
      EXPECT_GT(p.nets, p.gates);  // nets include PIs and DFF outputs
      EXPECT_EQ(p.code_bytes, 0u);
    }
  }
  const std::string text = inv.render();
  EXPECT_NE(text.find("create_pack"), std::string::npos);
  EXPECT_NE(text.find("checksum"), std::string::npos);
  EXPECT_NE(text.find("system inventory"), std::string::npos);
}

}  // namespace
}  // namespace socpower::core
