// Facade-equivalence goldens: the master/backend split must be a pure
// refactor. Every row of facade_goldens.hpp was captured from the
// pre-refactor monolithic CoEstimator (same systems, same configs, hexfloat
// so no digits are lost), and the split must reproduce it BIT-identically —
// compared with EXPECT_EQ on doubles, not a tolerance. The matrix covers
// both benchmark systems (all-gate HW and mixed gate+RTL), all four
// acceleration modes, hw_batch on/off, flush threads 1 and 4, plus the
// HW-side acceleration, low-level verification, and separate-estimation
// paths.
//
// Run-to-run reuse rides on the same goldens: a second run() on the same
// instance (and a run() after set_macromodel()) must also match them, so
// per-run state provably resets completely.
#include <gtest/gtest.h>

#include <string>

#include "core/coestimator.hpp"
#include "dist/wire.hpp"
#include "facade_goldens.hpp"
#include "systems/tcpip.hpp"

namespace socpower::core {
namespace {

TEST(FacadeEquivalence, BitIdenticalToPreRefactorGoldens) {
  for (const Golden& golden : kGoldens) {
    SCOPED_TRACE(golden.tag);
    const std::string tag = golden.tag;
    const std::size_t slash = tag.find('/');
    systems::TcpIpSystem sys(params_for(tag.substr(0, slash)));
    bool separate = false;
    CoEstimator est(&sys.network(), config_for(tag.substr(slash + 1),
                                               &separate));
    sys.configure(est);
    est.prepare();
    const RunResults r = separate ? est.run_separate(sys.stimulus())
                                  : est.run(sys.stimulus());
    expect_matches(r, golden.v);
  }
}

TEST(FacadeEquivalence, BitParallelFlushMatchesGoldens) {
  // The bit-parallel flush must reproduce every golden bit-identically. The
  // reaction cache is turned off so the packed path actually runs (with the
  // cache on it defers to replayed hits); batch0 rows keep the knob off
  // because packed evaluation only exists in the offline flush (validated).
  for (const Golden& golden : kGoldens) {
    SCOPED_TRACE(golden.tag);
    const std::string tag = golden.tag;
    const std::size_t slash = tag.find('/');
    systems::TcpIpSystem sys(params_for(tag.substr(0, slash)));
    bool separate = false;
    CoEstimatorConfig cfg = config_for(tag.substr(slash + 1), &separate);
    cfg.hw_reaction_cache = false;
    cfg.hw_bit_parallel = cfg.hw_batch;
    CoEstimator est(&sys.network(), cfg);
    sys.configure(est);
    est.prepare();
    const RunResults r = separate ? est.run_separate(sys.stimulus())
                                  : est.run(sys.stimulus());
    expect_matches(r, golden.v);
  }
}

TEST(FacadeEquivalence, SecondRunOnSameInstanceMatchesGoldens) {
  // Run-to-run reuse across all four acceleration modes: per-run state
  // (event queue, latches, energy cache, samplers, batch buffers, counters)
  // must reset completely, so the second run reproduces the golden exactly.
  for (const Golden& golden : kGoldens) {
    const std::string tag = golden.tag;
    if (tag.find("/batch1/t1") == std::string::npos) continue;
    SCOPED_TRACE(tag);
    const std::size_t slash = tag.find('/');
    systems::TcpIpSystem sys(params_for(tag.substr(0, slash)));
    bool separate = false;
    CoEstimator est(&sys.network(), config_for(tag.substr(slash + 1),
                                               &separate));
    sys.configure(est);
    est.prepare();
    (void)est.run(sys.stimulus());
    expect_matches(est.run(sys.stimulus()), golden.v);
  }
}

TEST(FacadeEquivalence, RunAfterSetMacromodelMatchesGoldens) {
  // Re-installing the (identical) characterized library clears the per-path
  // memos; results must not drift.
  for (const char* tag_cstr :
       {"gate/macromodel/batch1/t1", "mixed/macromodel/batch1/t1"}) {
    const std::string tag = tag_cstr;
    SCOPED_TRACE(tag);
    const Golden* golden = nullptr;
    for (const Golden& g : kGoldens)
      if (tag == g.tag) golden = &g;
    ASSERT_NE(golden, nullptr);
    const std::size_t slash = tag.find('/');
    systems::TcpIpSystem sys(params_for(tag.substr(0, slash)));
    bool separate = false;
    CoEstimator est(&sys.network(), config_for(tag.substr(slash + 1),
                                               &separate));
    sys.configure(est);
    est.prepare();
    (void)est.run(sys.stimulus());
    est.set_macromodel(est.macromodel());
    expect_matches(est.run(sys.stimulus()), golden->v);
  }
}

TEST(FacadeEquivalence, RunSeparateThenRunOnSameInstance) {
  // Interleaving the Section 2 baseline with co-estimation on one instance
  // must leave both bit-identical to their goldens.
  for (const char* system : {"gate", "mixed"}) {
    SCOPED_TRACE(system);
    const Golden *run_g = nullptr, *sep_g = nullptr;
    const std::string run_tag = std::string(system) + "/none/batch1/t1";
    const std::string sep_tag = std::string(system) + "/separate";
    for (const Golden& g : kGoldens) {
      if (run_tag == g.tag) run_g = &g;
      if (sep_tag == g.tag) sep_g = &g;
    }
    ASSERT_NE(run_g, nullptr);
    ASSERT_NE(sep_g, nullptr);
    systems::TcpIpSystem sys(params_for(system));
    CoEstimator est(&sys.network(), CoEstimatorConfig{});
    sys.configure(est);
    est.prepare();
    expect_matches(est.run_separate(sys.stimulus()), sep_g->v);
    expect_matches(est.run(sys.stimulus()), run_g->v);
    expect_matches(est.run_separate(sys.stimulus()), sep_g->v);
  }
}

TEST(DistRemote, GoldensBitIdenticalWithRemoteHwBackends) {
  // Routing every hardware estimator through an out-of-process worker must
  // not change a single bit of any golden: the wire protocol carries doubles
  // as IEEE-754 bit patterns and the worker hosts the same backend the
  // master would. dist_flush_chunk is tiny so chunked eager draining (many
  // slices per flush) is actually exercised on these small runs.
  if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
  for (const Golden& golden : kGoldens) {
    SCOPED_TRACE(golden.tag);
    const std::string tag = golden.tag;
    const std::size_t slash = tag.find('/');
    systems::TcpIpSystem sys(params_for(tag.substr(0, slash)));
    bool separate = false;
    CoEstimatorConfig cfg = config_for(tag.substr(slash + 1), &separate);
    cfg.hw_remote = true;
    cfg.dist_flush_chunk = 3;
    CoEstimator est(&sys.network(), cfg);
    sys.configure(est);
    est.prepare();
    const RunResults r = separate ? est.run_separate(sys.stimulus())
                                  : est.run(sys.stimulus());
    expect_matches(r, golden.v);
  }
}

}  // namespace
}  // namespace socpower::core
