// Cache simulator and bus/arbiter model tests.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "bus/bus_model.hpp"
#include "cache/cache_sim.hpp"

namespace socpower {
namespace {

using cache::CacheConfig;
using cache::CacheSim;

TEST(CacheSim, ColdMissThenHit) {
  CacheSim c;
  EXPECT_FALSE(c.access(0x100));
  EXPECT_TRUE(c.access(0x100));
  EXPECT_TRUE(c.access(0x104));  // same 16-byte line
  EXPECT_FALSE(c.access(0x110)); // next line
  EXPECT_EQ(c.totals().misses, 2u);
  EXPECT_EQ(c.totals().accesses, 4u);
}

TEST(CacheSim, DirectMappedConflict) {
  CacheConfig cfg;
  cfg.size_bytes = 256;
  cfg.line_bytes = 16;
  cfg.associativity = 1;  // 16 sets
  CacheSim c(cfg);
  EXPECT_FALSE(c.access(0x000));
  EXPECT_FALSE(c.access(0x100));  // same set, different tag: evicts
  EXPECT_FALSE(c.access(0x000));  // conflict miss
}

TEST(CacheSim, TwoWayAssociativityRemovesConflict) {
  CacheConfig cfg;
  cfg.size_bytes = 256;
  cfg.line_bytes = 16;
  cfg.associativity = 2;
  CacheSim c(cfg);
  EXPECT_FALSE(c.access(0x000));
  EXPECT_FALSE(c.access(0x100));
  EXPECT_TRUE(c.access(0x000));  // both fit
  EXPECT_TRUE(c.access(0x100));
}

TEST(CacheSim, LruEviction) {
  CacheConfig cfg;
  cfg.size_bytes = 32;
  cfg.line_bytes = 16;
  cfg.associativity = 2;  // a single set of two ways
  CacheSim c(cfg);
  c.access(0x00);   // A miss
  c.access(0x10);   // B miss
  c.access(0x00);   // A hit (B becomes LRU)
  c.access(0x20);   // C miss, evicts B
  EXPECT_TRUE(c.access(0x00));
  EXPECT_FALSE(c.access(0x10));  // B was evicted
}

TEST(CacheSim, MissPenaltyAndEnergyAccumulate) {
  CacheConfig cfg;
  cfg.miss_penalty_cycles = 8;
  CacheSim c(cfg);
  const auto stats = c.access_stream(std::vector<std::uint32_t>{0, 64, 128});
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.penalty_cycles, 24u);
  EXPECT_GT(stats.energy, 0.0);
  EXPECT_DOUBLE_EQ(stats.miss_rate(), 1.0);
}

TEST(CacheSim, StreamStatsAreDeltaNotTotals) {
  CacheSim c;
  c.access(0);
  const auto s = c.access_stream(std::vector<std::uint32_t>{0});
  EXPECT_EQ(s.accesses, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(c.totals().accesses, 2u);
}

TEST(CacheSim, FlushColdRestart) {
  CacheSim c;
  c.access(0x40);
  c.flush();
  EXPECT_FALSE(c.access(0x40));
}

TEST(CacheSim, HighLocalityLoopMostlyHits) {
  CacheSim c;
  std::vector<std::uint32_t> loop;
  for (int rep = 0; rep < 50; ++rep)
    for (std::uint32_t a = 0; a < 256; a += 4) loop.push_back(a);
  const auto s = c.access_stream(loop);
  EXPECT_LT(s.miss_rate(), 0.01);
}

// --- bus --------------------------------------------------------------------

bus::BusParams small_bus() {
  bus::BusParams p;
  p.line_cap_f = 1e-9;
  p.handshake_cycles = 2;
  p.dma_block_size = 4;
  return p;
}

bus::BusRequest req(int master, int prio, std::vector<std::uint8_t> data,
                    std::uint32_t addr = 0) {
  bus::BusRequest r;
  r.master = master;
  r.priority = prio;
  r.addr = addr;
  r.data = std::move(data);
  return r;
}

TEST(Bus, GrantCountFollowsDmaBlockSize) {
  bus::BusModel bus(small_bus());
  const auto r = bus.transfer(0, req(0, 0, std::vector<std::uint8_t>(10, 0)));
  EXPECT_EQ(r.grants, 3u);  // ceil(10/4)
  EXPECT_EQ(r.busy_cycles, 3u * 2 + 10u);  // 3 handshakes + 10 beats
}

TEST(Bus, LargerDmaFewerGrantsLessEnergy) {
  auto p = small_bus();
  p.dma_block_size = 2;
  bus::BusModel fine(p);
  p.dma_block_size = 16;
  bus::BusModel coarse(p);
  const std::vector<std::uint8_t> data(16, 0xAA);
  const auto rf = fine.transfer(0, req(0, 0, data));
  const auto rc = coarse.transfer(0, req(0, 0, data));
  EXPECT_GT(rf.grants, rc.grants);
  EXPECT_GT(rf.energy, rc.energy);
  EXPECT_GT(rf.busy_cycles, rc.busy_cycles);
}

TEST(Bus, SwitchingActivityFollowsHammingDistance) {
  // Alternating 0x00/0xFF toggles all 8 data lines per beat; constant data
  // toggles none after the first beat.
  auto p = small_bus();
  p.dma_block_size = 64;
  bus::BusModel b1(p);
  std::vector<std::uint8_t> alternating;
  for (int i = 0; i < 32; ++i)
    alternating.push_back(i % 2 ? 0xFF : 0x00);
  const auto ra = b1.transfer(0, req(0, 0, alternating));
  bus::BusModel b2(p);
  const auto rc =
      b2.transfer(0, req(0, 0, std::vector<std::uint8_t>(32, 0x00)));
  EXPECT_GT(ra.energy, rc.energy);
  EXPECT_GT(b1.totals().data_toggles, b2.totals().data_toggles);
}

TEST(Bus, EnergyScalesWithLineCapacitance) {
  auto p = small_bus();
  bus::BusModel b1(p);
  p.line_cap_f *= 10;
  bus::BusModel b10(p);
  const std::vector<std::uint8_t> data = {0xFF, 0x00, 0xFF, 0x00};
  const auto e1 = b1.transfer(0, req(0, 0, data)).energy;
  const auto e10 = b10.transfer(0, req(0, 0, data)).energy;
  EXPECT_NEAR(e10 / e1, 10.0, 1e-9);
}

TEST(Bus, PriorityOrdersSimultaneousRequests) {
  bus::BusModel bus(small_bus());
  std::vector<bus::BusRequest> reqs;
  reqs.push_back(req(0, /*prio=*/1, std::vector<std::uint8_t>(4, 0)));
  reqs.push_back(req(1, /*prio=*/5, std::vector<std::uint8_t>(4, 0)));
  const auto results = bus.arbitrate(100, std::move(reqs));
  // Master 1 (higher priority) goes first.
  EXPECT_EQ(results[1].start, 100u);
  EXPECT_EQ(results[1].wait_cycles, 0u);
  EXPECT_GT(results[0].start, results[1].start);
  EXPECT_EQ(results[0].start, results[1].end);
}

TEST(Bus, FcfsAcrossInstants) {
  bus::BusModel bus(small_bus());
  const auto r1 = bus.transfer(0, req(0, 0, std::vector<std::uint8_t>(8, 0)));
  const auto r2 =
      bus.transfer(1, req(1, 9, std::vector<std::uint8_t>(4, 0)));
  // Even at higher priority, master 1 waits for the bus to free.
  EXPECT_EQ(r2.start, r1.end);
  EXPECT_EQ(r2.wait_cycles, r1.end - 1);
}

TEST(Bus, TiesBrokenByMasterId) {
  bus::BusModel bus(small_bus());
  std::vector<bus::BusRequest> reqs;
  reqs.push_back(req(7, 3, {1}));
  reqs.push_back(req(2, 3, {1}));
  const auto results = bus.arbitrate(0, std::move(reqs));
  EXPECT_LT(results[1].start, results[0].start);  // master 2 first
}

TEST(Bus, EmptyPayloadStillPaysOneHandshake) {
  bus::BusModel bus(small_bus());
  const auto r = bus.transfer(0, req(0, 0, {}));
  EXPECT_EQ(r.grants, 1u);
  EXPECT_EQ(r.busy_cycles, 2u);
  EXPECT_GT(r.energy, 0.0);  // control-line toggles
}

TEST(Bus, TotalsAccumulateAndReset) {
  bus::BusModel bus(small_bus());
  bus.transfer(0, req(0, 0, std::vector<std::uint8_t>(6, 0x5A)));
  bus.transfer(10, req(1, 0, std::vector<std::uint8_t>(2, 0xA5)));
  EXPECT_EQ(bus.totals().transfers, 2u);
  EXPECT_EQ(bus.totals().bytes, 8u);
  EXPECT_GT(bus.totals().energy, 0.0);
  bus.reset();
  EXPECT_EQ(bus.totals().transfers, 0u);
  EXPECT_EQ(bus.free_at(), 0u);
}

TEST(Bus, GrantTimesRecordedWhenEnabled) {
  bus::BusModel bus(small_bus());
  bus.set_keep_grant_times(true);
  bus.transfer(5, req(0, 0, std::vector<std::uint8_t>(10, 0)));
  ASSERT_EQ(bus.grant_times().size(), 3u);
  EXPECT_EQ(bus.grant_times()[0], 5u);
}

TEST(Bus, AddressWidthMasksActivity) {
  auto p = small_bus();
  p.addr_bits = 4;  // only 4 address lines exist
  bus::BusModel bus(p);
  bus.transfer(0, req(0, 0, std::vector<std::uint8_t>(4, 0), 0xF0));
  // Address toggles bounded by 4 bits per beat.
  EXPECT_LE(bus.totals().addr_toggles, 4u * 4u);
}

}  // namespace
}  // namespace socpower
