// Two-phase exploration helper and macro-model injection tests.
#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "systems/tcpip.hpp"

namespace socpower::core {
namespace {

std::vector<ExplorationPoint> dma_points(const std::vector<unsigned>& dmas) {
  std::vector<ExplorationPoint> pts;
  for (const unsigned dma : dmas) {
    ExplorationPoint p;
    p.label = "dma=" + std::to_string(dma);
    p.run_coarse = [dma] {
      systems::TcpIpSystem sys(
          {.num_packets = 5, .packet_bytes = 64, .dma_block_size = dma});
      CoEstimatorConfig cfg;
      cfg.accel = Acceleration::kMacroModel;
      CoEstimator est(&sys.network(), cfg);
      sys.configure(est);
      est.prepare();
      return est.run(sys.stimulus());
    };
    p.run_exact = [dma] {
      systems::TcpIpSystem sys(
          {.num_packets = 5, .packet_bytes = 64, .dma_block_size = dma});
      CoEstimator est(&sys.network(), {});
      sys.configure(est);
      est.prepare();
      return est.run(sys.stimulus());
    };
    pts.push_back(std::move(p));
  }
  return pts;
}

TEST(Explorer, CoarseRankingVerifiedExactly) {
  const auto outcome = explore(dma_points({4, 16, 64}), /*verify_top=*/2);
  ASSERT_EQ(outcome.ranked.size(), 3u);
  // Larger DMA is cheaper in this system: the winner is dma=64.
  EXPECT_EQ(outcome.best().label, "dma=64");
  EXPECT_TRUE(outcome.winner_confirmed);
  // Verified entries carry exact energies; the last-ranked one does not.
  EXPECT_TRUE(outcome.ranked[0].exact_energy.has_value());
  EXPECT_TRUE(outcome.ranked[1].exact_energy.has_value());
  EXPECT_FALSE(outcome.ranked[2].exact_energy.has_value());
  EXPECT_GT(outcome.verification_correlation, 0.99);
  // The macro-model over-estimates: coarse > exact for verified points.
  for (const auto& e : outcome.ranked) {
    if (e.exact_energy) {
      EXPECT_GT(e.coarse_energy, *e.exact_energy);
    }
  }
  const std::string text = outcome.render();
  EXPECT_NE(text.find("dma=64"), std::string::npos);
  EXPECT_NE(text.find("winner confirmed"), std::string::npos);
}

TEST(Explorer, CoarseOnlyModeSkipsExactRuns) {
  const auto outcome = explore(dma_points({8, 32}), /*verify_top=*/0);
  for (const auto& e : outcome.ranked)
    EXPECT_FALSE(e.exact_energy.has_value());
  EXPECT_DOUBLE_EQ(outcome.exact_seconds, 0.0);
  EXPECT_TRUE(outcome.winner_confirmed);
}

TEST(MacroModelInjection, ParameterFileRoundTripDrivesRuns) {
  // Characterize on one estimator, export the Figure 3 parameter file,
  // import it into a fresh estimator, and check that macro-modeled runs
  // agree exactly.
  systems::TcpIpSystem sys_a({.num_packets = 3, .packet_bytes = 32});
  CoEstimatorConfig cfg;
  cfg.accel = Acceleration::kMacroModel;
  CoEstimator a(&sys_a.network(), cfg);
  sys_a.configure(a);
  a.prepare();
  const auto ra = a.run(sys_a.stimulus());
  const std::string param_file = a.macromodel().to_parameter_file();

  systems::TcpIpSystem sys_b({.num_packets = 3, .packet_bytes = 32});
  CoEstimator b(&sys_b.network(), cfg);
  sys_b.configure(b);
  b.prepare();
  auto loaded = MacroModelLibrary::from_parameter_file(param_file);
  ASSERT_TRUE(loaded.has_value());
  b.set_macromodel(*loaded);
  const auto rb = b.run(sys_b.stimulus());
  // nJ-granularity parameter files round to ~1e-6 relative.
  EXPECT_NEAR(rb.total_energy, ra.total_energy, ra.total_energy * 1e-4);
  EXPECT_EQ(rb.iss_invocations, 0u);
}

}  // namespace
}  // namespace socpower::core
