// Bit-parallel gate evaluation must be invisible except for speed: every
// lane of a packed pass is bit-identical — energies compared with EXPECT_EQ
// on doubles, never a tolerance — to the scalar step() it replaces. These
// tests fuzz step_packed against scalar references over randomized FSMD
// netlists (chain seeds recorded from the scalar trajectory, mixed full and
// partial lane groups), check probe_packed against hypothetical scalar
// steps on simulator copies, exercise the seed-rejection fallback, the
// force_net and reaction-cache interactions, the widened 48-bit input
// words, compactor candidate pricing, config validation, and the
// co-estimator flush end to end with hw_bit_parallel on vs off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/coestimator.hpp"
#include "core/compactor.hpp"
#include "hw/gatesim.hpp"
#include "hw/netlist.hpp"
#include "hw/reaction_cache.hpp"
#include "hwsyn/rtl.hpp"
#include "systems/tcpip.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace socpower::hw {
namespace {

constexpr unsigned kWidth = 4;

// -- random FSMD generator (the reaction-cache fuzz shape) -------------------

struct RandomDesign {
  Netlist nl;
  std::vector<hwsyn::Word> regs;
  std::size_t n_inputs = 0;
};

RandomDesign random_design(Rng& rng) {
  RandomDesign d;
  hwsyn::RtlBuilder rtl(&d.nl);
  std::vector<hwsyn::Word> pool;
  const std::size_t n_in = 2 + rng.below(2);
  for (std::size_t i = 0; i < n_in; ++i)
    pool.push_back(rtl.input_word("in" + std::to_string(i), kWidth));
  const std::size_t n_reg = 2 + rng.below(3);
  for (std::size_t i = 0; i < n_reg; ++i) {
    d.regs.push_back(
        rtl.reg_word(static_cast<std::uint32_t>(rng.below(16)), kWidth));
    pool.push_back(d.regs.back());
  }
  const std::size_t n_ops = 6 + rng.below(10);
  for (std::size_t i = 0; i < n_ops; ++i) {
    const hwsyn::Word& a = pool[rng.below(pool.size())];
    const hwsyn::Word& b = pool[rng.below(pool.size())];
    hwsyn::Word r;
    switch (rng.below(6)) {
      case 0: r = rtl.add(a, b); break;
      case 1: r = rtl.sub(a, b); break;
      case 2: r = rtl.word_xor(a, b); break;
      case 3: r = rtl.word_and(a, b); break;
      case 4: r = rtl.word_or(a, b); break;
      default: r = rtl.mux(rtl.eq(a, b), a, b); break;
    }
    pool.push_back(r);
  }
  for (const hwsyn::Word& q : d.regs) {
    const hwsyn::Word& src = pool[pool.size() - 1 - rng.below(n_ops)];
    rtl.connect_reg(q, rtl.word_xor(src, pool[rng.below(pool.size())]));
  }
  for (unsigned b = 0; b < kWidth; ++b)
    d.nl.mark_output(pool.back()[b], "out");
  EXPECT_EQ(d.nl.validate(), "");
  d.n_inputs = d.nl.primary_inputs().size();
  return d;
}

void expect_same_nets(const Netlist& nl, const GateSim& a, const GateSim& b) {
  for (std::size_t n = 0; n < nl.net_count(); ++n)
    ASSERT_EQ(a.net_value(static_cast<NetId>(n)),
              b.net_value(static_cast<NetId>(n)))
        << "net " << n << " diverged";
}

/// One recorded scalar cycle: the stimulus, the pre-edge register state (the
/// packed chain's seed material — standing in for the behavioral pre-states
/// the estimator records at enqueue time), and everything step() returned.
struct RecordedCycle {
  std::uint64_t stimulus = 0;
  std::uint64_t pre_q = 0;  // bit d = dffs()[d] Q before the clock edge
  CycleResult result;
  std::uint64_t out_word = 0;
};

std::uint64_t pack_q(const GateSim& sim) {
  const auto& dffs = sim.netlist().dffs();
  std::uint64_t q = 0;
  for (std::size_t d = 0; d < dffs.size(); ++d)
    if (sim.net_value(dffs[d].q)) q |= 1ull << d;
  return q;
}

void apply_scalar_stimulus(GateSim& sim, std::size_t n_inputs,
                           std::uint64_t vec) {
  for (std::size_t i = 0; i < n_inputs; ++i)
    sim.set_input(i, (vec >> (i & 63u)) & 1u);
}

std::vector<RecordedCycle> record_scalar(GateSim& sim, std::size_t n_inputs,
                                         const std::vector<std::uint64_t>& stim) {
  std::vector<RecordedCycle> rec;
  rec.reserve(stim.size());
  for (const std::uint64_t vec : stim) {
    RecordedCycle c;
    c.stimulus = vec;
    c.pre_q = pack_q(sim);
    apply_scalar_stimulus(sim, n_inputs, vec);
    c.result = sim.step();
    c.out_word = sim.read_word(0, kWidth);
    rec.push_back(c);
  }
  return rec;
}

/// Replays `rec` on `sim` as packed passes of the given group sizes (cycled),
/// asserting per-lane bit identity cycle by cycle.
void replay_packed(GateSim& sim, std::size_t n_inputs,
                   const std::vector<RecordedCycle>& rec,
                   const std::vector<unsigned>& group_sizes) {
  CycleResult per_lane[GateSim::kMaxLanes];
  const std::size_t n_dffs = sim.netlist().dffs().size();
  std::size_t base = 0, g = 0;
  while (base < rec.size()) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(group_sizes[g++ % group_sizes.size()],
                              rec.size() - base));
    sim.begin_packed_stage();
    for (unsigned l = 0; l < n; ++l) {
      const RecordedCycle& c = rec[base + l];
      for (std::size_t i = 0; i < n_inputs; ++i)
        sim.stage_packed_input(i, l, (c.stimulus >> (i & 63u)) & 1u);
      for (std::size_t d = 0; d < n_dffs; ++d)
        sim.seed_packed_dff(d, l, (c.pre_q >> d) & 1u);
    }
    ASSERT_TRUE(sim.step_packed(n, per_lane)) << "group at cycle " << base;
    for (unsigned l = 0; l < n; ++l) {
      const RecordedCycle& c = rec[base + l];
      ASSERT_EQ(per_lane[l].energy, c.result.energy) << "cycle " << base + l;
      ASSERT_EQ(per_lane[l].toggles, c.result.toggles) << "cycle " << base + l;
      ASSERT_EQ(sim.read_word_lane(0, kWidth, l), c.out_word)
          << "cycle " << base + l;
    }
    base += n;
  }
}

// -- multi-seed differential fuzz --------------------------------------------

class GatesimPackedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatesimPackedFuzz, ChainMatchesScalarBitwise) {
  Rng rng(GetParam());
  RandomDesign d = random_design(rng);
  GateSim ref(&d.nl);
  GateSim sim(&d.nl);

  std::vector<std::uint64_t> stim;
  for (int i = 0; i < 384; ++i) stim.push_back(rng.next());
  const std::vector<RecordedCycle> rec = record_scalar(ref, d.n_inputs, stim);

  // Mixed group sizes: full words, odd partials, and single-lane passes all
  // share the one packed path.
  replay_packed(sim, d.n_inputs, rec, {64, 7, 1, 13});

  expect_same_nets(d.nl, ref, sim);
  EXPECT_EQ(ref.cycles_simulated(), sim.cycles_simulated());
  EXPECT_EQ(ref.total_energy(), sim.total_energy());  // bitwise
  EXPECT_EQ(sim.packed_seed_rejects(), 0u);
  EXPECT_GT(sim.packed_steps(), 0u);
  EXPECT_EQ(sim.packed_lane_steps(), rec.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatesimPackedFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// -- probe mode --------------------------------------------------------------

TEST(GatesimPacked, ProbeMatchesHypotheticalSteps) {
  Rng rng(42);
  RandomDesign d = random_design(rng);
  GateSim sim(&d.nl);
  // Reach a non-trivial state (with pending latch marks) before probing.
  for (int i = 0; i < 20; ++i) {
    apply_scalar_stimulus(sim, d.n_inputs, rng.next());
    (void)sim.step();
  }

  std::vector<std::uint64_t> candidates;
  for (int i = 0; i < 10; ++i) candidates.push_back(rng.next());

  // Expected results: one simulator COPY per candidate, stepped scalar.
  std::vector<CycleResult> want;
  std::vector<std::uint64_t> want_out;
  for (const std::uint64_t vec : candidates) {
    GateSim copy = sim;
    apply_scalar_stimulus(copy, d.n_inputs, vec);
    want.push_back(copy.step());
    want_out.push_back(copy.read_word(0, kWidth));
  }

  std::vector<bool> before_nets;
  for (std::size_t n = 0; n < d.nl.net_count(); ++n)
    before_nets.push_back(sim.net_value(static_cast<NetId>(n)));
  const std::vector<std::uint8_t> before_staged = sim.staged_inputs();
  const Joules before_energy = sim.total_energy();
  const std::uint64_t before_cycles = sim.cycles_simulated();

  CycleResult per_lane[GateSim::kMaxLanes];
  sim.begin_packed_stage();
  for (unsigned l = 0; l < candidates.size(); ++l)
    for (std::size_t i = 0; i < d.n_inputs; ++i)
      sim.stage_packed_input(i, l, (candidates[l] >> (i & 63u)) & 1u);
  sim.probe_packed(static_cast<unsigned>(candidates.size()), per_lane);

  for (std::size_t l = 0; l < candidates.size(); ++l) {
    EXPECT_EQ(per_lane[l].energy, want[l].energy) << "lane " << l;  // bitwise
    EXPECT_EQ(per_lane[l].toggles, want[l].toggles) << "lane " << l;
    EXPECT_EQ(sim.read_word_lane(0, kWidth, static_cast<unsigned>(l)),
              want_out[l])
        << "lane " << l;
  }

  // Purely speculative: nothing observable moved...
  for (std::size_t n = 0; n < d.nl.net_count(); ++n)
    ASSERT_EQ(sim.net_value(static_cast<NetId>(n)), before_nets[n]);
  EXPECT_EQ(sim.staged_inputs(), before_staged);
  EXPECT_EQ(sim.total_energy(), before_energy);
  EXPECT_EQ(sim.cycles_simulated(), before_cycles);
  // ...including the pending dirty marks: a real step after the probe must
  // equal the same step on a never-probed copy.
  GateSim twin = sim;
  apply_scalar_stimulus(sim, d.n_inputs, candidates[0]);
  apply_scalar_stimulus(twin, d.n_inputs, candidates[0]);
  const CycleResult after_probe = sim.step();
  const CycleResult after_twin = twin.step();
  EXPECT_EQ(after_probe.energy, after_twin.energy);
  EXPECT_EQ(after_probe.toggles, after_twin.toggles);
  expect_same_nets(d.nl, sim, twin);
}

// -- chain seed verification -------------------------------------------------

/// 4-bit counter with an enable input: tiny, stateful, deterministic.
struct Counter {
  Netlist nl;
  hwsyn::Word q;
  std::size_t n_inputs = 0;

  Counter() {
    hwsyn::RtlBuilder rtl(&nl);
    const NetId en = nl.add_primary_input("en");
    q = rtl.reg_word(0, kWidth);
    const hwsyn::Word inc = rtl.add(q, rtl.constant(1, kWidth));
    rtl.connect_reg(q, rtl.mux(en, inc, q));
    for (unsigned b = 0; b < kWidth; ++b) nl.mark_output(q[b], "q");
    n_inputs = nl.primary_inputs().size();
  }
};

TEST(GatesimPacked, ChainRejectsBadSeedsWithoutStateChange) {
  Counter c;
  GateSim sim(&c.nl);
  CycleResult per_lane[GateSim::kMaxLanes];

  // Correct seeds: with en=1 the counter counts 0,1,2,... so lane l's Q is l.
  auto stage = [&](unsigned lanes, std::uint64_t bad_lane) {
    sim.begin_packed_stage();
    for (unsigned l = 0; l < lanes; ++l) {
      sim.stage_packed_input(0, l, true);
      const std::uint64_t ql = (l == bad_lane) ? (l ^ 1u) : l;
      for (std::size_t d = 0; d < c.nl.dffs().size(); ++d)
        sim.seed_packed_dff(d, l, (ql >> d) & 1u);
    }
  };

  stage(8, /*bad_lane=*/3);
  EXPECT_FALSE(sim.step_packed(8, per_lane));
  EXPECT_EQ(sim.packed_seed_rejects(), 1u);
  EXPECT_EQ(sim.cycles_simulated(), 0u);
  EXPECT_EQ(sim.total_energy(), 0.0);
  for (unsigned b = 0; b < kWidth; ++b)
    EXPECT_FALSE(sim.net_value(c.q[b]));  // still the reset state

  // Degenerate lane counts reject too, before touching anything.
  EXPECT_FALSE(sim.step_packed(0, per_lane));
  EXPECT_FALSE(sim.step_packed(65, per_lane));
  EXPECT_FALSE(sim.step_packed(8, nullptr));

  // The same staging with consistent seeds succeeds and matches scalar.
  GateSim ref(&c.nl);
  std::vector<CycleResult> want;
  for (int i = 0; i < 8; ++i) {
    ref.set_input(0, true);
    want.push_back(ref.step());
  }
  stage(8, /*bad_lane=*/~0ull);
  ASSERT_TRUE(sim.step_packed(8, per_lane));
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(per_lane[l].energy, want[l].energy);
    EXPECT_EQ(per_lane[l].toggles, want[l].toggles);
  }
  expect_same_nets(c.nl, ref, sim);
  EXPECT_EQ(ref.total_energy(), sim.total_energy());
}

// -- forced-state and reaction-cache interplay -------------------------------

TEST(GatesimPacked, ForceNetThenPackedMatchesScalar) {
  Rng rng(7);
  RandomDesign d = random_design(rng);
  GateSim ref(&d.nl);
  GateSim sim(&d.nl);

  // Shared scalar prefix, then identical forced register writes on both:
  // the packed pass must consume the pending force marks exactly as the
  // scalar steps do (lane 0 billing starts from the same dirty state).
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t vec = rng.next();
    apply_scalar_stimulus(ref, d.n_inputs, vec);
    apply_scalar_stimulus(sim, d.n_inputs, vec);
    const CycleResult re = ref.step();
    const CycleResult se = sim.step();
    ASSERT_EQ(re.energy, se.energy);
  }
  const hwsyn::Word& q = d.regs[0];
  const bool flip = !ref.net_value(q[1]);
  ref.force_net(q[1], flip);
  sim.force_net(q[1], flip);

  std::vector<std::uint64_t> stim;
  for (int i = 0; i < 96; ++i) stim.push_back(rng.next());
  const std::vector<RecordedCycle> rec = record_scalar(ref, d.n_inputs, stim);
  replay_packed(sim, d.n_inputs, rec, {16});
  expect_same_nets(d.nl, ref, sim);
  EXPECT_EQ(ref.total_energy(), sim.total_energy());
}

TEST(GatesimPacked, ReactionCacheDeAnchorsAfterPackedJump) {
  Counter c;
  GateSim ref(&c.nl);
  GateSim sim(&c.nl);
  ReactionCache cache(&sim, {});

  auto step_both = [&] {
    ref.set_input(0, true);
    sim.set_input(0, true);
    const CycleResult re = ref.step();
    const CycleResult ce = cache.step();
    ASSERT_EQ(re.energy, ce.energy);
    ASSERT_EQ(re.toggles, ce.toggles);
  };

  // Warm the cache past one counter wrap, so stale replays WOULD be
  // available if the packed jump failed to de-anchor it.
  for (int i = 0; i < 20; ++i) step_both();
  EXPECT_GT(cache.stats().hits, 0u);

  // 8-cycle packed jump on the cached simulator; plain scalar on the ref.
  const std::uint64_t q0 = pack_q(sim);
  CycleResult per_lane[GateSim::kMaxLanes];
  sim.begin_packed_stage();
  for (unsigned l = 0; l < 8; ++l) {
    sim.stage_packed_input(0, l, true);
    const std::uint64_t ql = (q0 + l) & 0xF;
    for (std::size_t d = 0; d < c.nl.dffs().size(); ++d)
      sim.seed_packed_dff(d, l, (ql >> d) & 1u);
  }
  ASSERT_TRUE(sim.step_packed(8, per_lane));
  for (int i = 0; i < 8; ++i) {
    ref.set_input(0, true);
    const CycleResult re = ref.step();
    EXPECT_EQ(re.energy, per_lane[i].energy);
  }
  expect_same_nets(c.nl, ref, sim);

  // Cached stepping resumes bit-identically: the forced-state flag made the
  // cache re-anchor instead of replaying entries captured pre-jump.
  for (int i = 0; i < 20; ++i) step_both();
  expect_same_nets(c.nl, ref, sim);
  EXPECT_EQ(ref.total_energy(), sim.total_energy());
}

// -- widened input/output words ----------------------------------------------

TEST(GatesimPacked, WideInputWord48RoundTrips) {
  // 48-bit pass-through port: wider than the old uint32_t staging could
  // express without truncation.
  Netlist nl;
  std::vector<NetId> pis;
  for (int i = 0; i < 48; ++i)
    pis.push_back(nl.add_primary_input("in" + std::to_string(i)));
  for (int i = 0; i < 48; ++i)
    nl.mark_output(nl.add_gate(GateType::kBuf, pis[i]), "out");
  ASSERT_EQ(nl.validate(), "");

  GateSim sim(&nl);
  const std::uint64_t value = 0x123456789ABCull;
  sim.set_input_word(0, value, 48);
  (void)sim.step();
  EXPECT_EQ(sim.read_word(0, 48), value);

  // Packed lanes carry the full width too; unstaged lanes default to the
  // persisted scalar staging.
  const std::uint64_t other = 0xFEDCBA987654ull & ((1ull << 48) - 1);
  sim.begin_packed_stage();
  sim.stage_packed_input_word(0, other, 48, /*lane=*/5);
  sim.evaluate_packed(6);
  EXPECT_EQ(sim.read_word_lane(0, 48, 5), other);
  EXPECT_EQ(sim.read_word_lane(0, 48, 0), value);
}

// -- compactor candidate pricing ---------------------------------------------

TEST(GatesimPacked, CompactorPricesCandidatesBitIdentical) {
  Rng rng(101);
  RandomDesign d = random_design(rng);
  GateSim sim(&d.nl);
  for (int i = 0; i < 10; ++i) {
    apply_scalar_stimulus(sim, d.n_inputs, rng.next());
    (void)sim.step();
  }

  // 70 candidates forces a second (partial) packed pass.
  std::vector<std::vector<std::uint8_t>> patterns;
  for (int p = 0; p < 70; ++p) {
    std::vector<std::uint8_t> bits(d.n_inputs);
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    patterns.push_back(std::move(bits));
  }

  const Joules before_energy = sim.total_energy();
  const std::uint64_t before_cycles = sim.cycles_simulated();
  core::DynamicCompactionStream stream{core::CompactionParams{}};
  const std::vector<Joules> prices = stream.price_candidates(sim, patterns);
  ASSERT_EQ(prices.size(), patterns.size());
  EXPECT_EQ(stream.priced(), patterns.size());
  EXPECT_EQ(sim.total_energy(), before_energy);  // speculative only
  EXPECT_EQ(sim.cycles_simulated(), before_cycles);

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    GateSim copy = sim;
    for (std::size_t i = 0; i < d.n_inputs; ++i)
      copy.set_input(i, patterns[p][i] != 0);
    EXPECT_EQ(copy.step().energy, prices[p]) << "pattern " << p;  // bitwise
  }
}

}  // namespace
}  // namespace socpower::hw

// -- config validation and end-to-end flush ----------------------------------

namespace socpower::core {
namespace {

bool errors_mention(const std::vector<std::string>& errs,
                    const std::string& needle) {
  for (const std::string& e : errs)
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

TEST(GatesimPacked, ConfigValidatesPackedKnobs) {
  CoEstimatorConfig cfg;
  cfg.hw_bit_parallel = true;
  EXPECT_FALSE(errors_mention(cfg.validate(), "hw_bit_parallel"));

  cfg.hw_batch = false;
  EXPECT_TRUE(errors_mention(cfg.validate(), "hw_bit_parallel"));
  cfg.hw_batch = true;

  cfg.hw_packed_lanes = 0;
  EXPECT_TRUE(errors_mention(cfg.validate(), "hw_packed_lanes"));
  cfg.hw_packed_lanes = 65;
  EXPECT_TRUE(errors_mention(cfg.validate(), "hw_packed_lanes"));
  cfg.hw_packed_lanes = 64;
  EXPECT_FALSE(errors_mention(cfg.validate(), "hw_packed_lanes"));
}

RunResults run_tcpip_packed(bool bit_parallel, unsigned lanes,
                            unsigned threads, bool rcache) {
  systems::TcpIpParams p;
  p.num_packets = 3;
  p.packet_bytes = 64;
  p.ip_check_in_hw = true;  // two gate-level ASICs
  systems::TcpIpSystem sys(p);
  CoEstimatorConfig cfg;
  cfg.hw_bit_parallel = bit_parallel;
  cfg.hw_packed_lanes = lanes;
  cfg.hw_flush_threads = threads;
  cfg.hw_reaction_cache = rcache;
  CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  return est.run(sys.stimulus());
}

void expect_identical_runs(const RunResults& off, const RunResults& on) {
  EXPECT_EQ(off.total_energy, on.total_energy);  // bitwise throughout
  EXPECT_EQ(off.cpu_energy, on.cpu_energy);
  EXPECT_EQ(off.hw_energy, on.hw_energy);
  EXPECT_EQ(off.bus_energy, on.bus_energy);
  EXPECT_EQ(off.cache_energy, on.cache_energy);
  EXPECT_EQ(off.end_time, on.end_time);
  EXPECT_EQ(off.reactions, on.reactions);
  EXPECT_EQ(off.hw_reactions, on.hw_reactions);
  EXPECT_EQ(off.gate_sim_cycles, on.gate_sim_cycles);
  ASSERT_EQ(off.process_energy.size(), on.process_energy.size());
  for (std::size_t i = 0; i < off.process_energy.size(); ++i)
    EXPECT_EQ(off.process_energy[i], on.process_energy[i]);
}

TEST(GatesimPackedEndToEnd, FlushBitIdenticalOnVsOff) {
  const RunResults off = run_tcpip_packed(false, 64, 1, false);
  expect_identical_runs(off, run_tcpip_packed(true, 64, 1, false));
  // Narrower groups take the same path with more passes.
  expect_identical_runs(off, run_tcpip_packed(true, 8, 1, false));
}

TEST(GatesimPackedEndToEnd, ParallelFlushStaysIdentical) {
  // Packed passes inside pool workers: same energies as serial scalar.
  const RunResults off = run_tcpip_packed(false, 64, 1, false);
  expect_identical_runs(off, run_tcpip_packed(true, 64, 4, false));
}

TEST(GatesimPackedEndToEnd, ReactionCacheKeepsPriority) {
  // With the reaction cache on (the default), the knob must be inert: the
  // cache's replayed hits keep the scalar path, and results cannot move.
  const RunResults off = run_tcpip_packed(false, 64, 1, true);
  expect_identical_runs(off, run_tcpip_packed(true, 64, 1, true));
}

TEST(GatesimPackedEndToEnd, PackedTelemetryCountsEngagement) {
  telemetry::set_enabled(true, false);
  telemetry::reset();
  (void)run_tcpip_packed(true, 64, 1, false);
  const telemetry::Snapshot snap = telemetry::snapshot();
  std::uint64_t steps = 0, lanes = 0, passes = 0;
  for (const auto& c : snap.counters) {
    if (c.name.find(".packed.steps") != std::string::npos) steps += c.value;
    if (c.name.find(".packed.lanes") != std::string::npos) lanes += c.value;
    if (c.name == "gatesim.packed_passes") passes += c.value;
  }
  telemetry::set_enabled(false, false);
  telemetry::reset();
  EXPECT_GT(steps, 0u);       // packed flush groups actually formed
  EXPECT_GT(lanes, steps);    // ...and averaged more than one lane each
  EXPECT_GE(passes, steps);   // every group ran at least one gatesim pass
}

}  // namespace
}  // namespace socpower::core
