// Software synthesis tests: macro-op streams, code generation, and — most
// importantly — the property that compiled SLITE code running on the ISS
// computes exactly what the behavioral model computes (same variable
// updates, same emissions) over randomized s-graphs and inputs.
#include <gtest/gtest.h>

#include <vector>

#include "cfsm/cfsm.hpp"
#include "iss/iss.hpp"
#include "iss/power_model.hpp"
#include "swsyn/codegen.hpp"
#include "swsyn/macro_op.hpp"
#include "swsyn/rtos.hpp"
#include "util/rng.hpp"

namespace socpower::swsyn {
namespace {

using cfsm::ExprOp;

struct TestCfsm {
  cfsm::Network net;
  cfsm::Cfsm& c;
  cfsm::EventId trig;
  cfsm::EventId out;

  TestCfsm()
      : c(net.add_cfsm("t")), trig(net.declare_event("TRIG")),
        out(net.declare_event("OUT")) {
    c.add_input(trig);
    c.add_output(out);
  }
};

/// Runs both the interpreter and the compiled image; checks equivalence.
void check_equivalence(const cfsm::Cfsm& c, const cfsm::ReactionInputs& in,
                       cfsm::CfsmState state) {
  const SwImage img = compile_cfsm(c, /*code=*/0x20, /*data=*/0x800);
  iss::Iss iss(iss::InstructionPowerModel::sparclite(), {});
  iss.load_program(img.code, img.code_base_word);

  cfsm::CfsmState interp = state;
  const cfsm::Reaction reaction = c.react(in, interp);

  stage_reaction(iss, img, in, state);
  iss.reset_cpu();
  iss.set_pc(img.code_base_word);
  const iss::RunResult r = iss.run();
  ASSERT_TRUE(r.halted);

  const auto emissions = read_emissions(iss, img);
  ASSERT_EQ(emissions.size(), reaction.emissions.size());
  for (std::size_t i = 0; i < emissions.size(); ++i) {
    EXPECT_EQ(emissions[i].event, reaction.emissions[i].event);
    EXPECT_EQ(emissions[i].value, reaction.emissions[i].value);
  }
  cfsm::CfsmState compiled = state;
  read_vars(iss, img, compiled);
  EXPECT_EQ(compiled.vars, interp.vars);
}

TEST(SwSyn, StraightLineAssignments) {
  TestCfsm t;
  auto& b = t.c;
  const auto v0 = b.add_var("a", 3);
  const auto v1 = b.add_var("b", 4);
  auto& g = b.graph();
  auto& a = b.arena();
  const auto end = g.add_end();
  const auto n2 = g.add_assign(
      v1, a.binary(ExprOp::kMul, a.variable(v0), a.variable(v1)), end);
  g.set_root(g.add_assign(
      v0, a.binary(ExprOp::kAdd, a.variable(v0), a.constant(10)), n2));
  cfsm::ReactionInputs in;
  in.set(t.trig, 0);
  check_equivalence(b, in, b.make_state());
}

TEST(SwSyn, BranchesFollowData) {
  TestCfsm t;
  auto& b = t.c;
  const auto v = b.add_var("v");
  auto& g = b.graph();
  auto& a = b.arena();
  const auto end = g.add_end();
  const auto yes = g.add_assign(v, a.constant(111), end);
  const auto no = g.add_assign(v, a.constant(222), end);
  g.set_root(g.add_test(
      a.binary(ExprOp::kGt, a.event_value(t.trig), a.constant(5)), yes, no));
  for (const std::int32_t x : {0, 5, 6, -3}) {
    cfsm::ReactionInputs in;
    in.set(t.trig, x);
    check_equivalence(b, in, b.make_state());
  }
}

TEST(SwSyn, EmissionsInProgramOrder) {
  TestCfsm t;
  auto& b = t.c;
  auto& g = b.graph();
  auto& a = b.arena();
  const auto end = g.add_end();
  const auto e2 = g.add_emit(t.out, a.constant(2), end);
  g.set_root(g.add_emit(t.out, a.constant(1), e2));
  cfsm::ReactionInputs in;
  in.set(t.trig, 0);
  check_equivalence(b, in, b.make_state());
}

TEST(SwSyn, WideConstants) {
  TestCfsm t;
  auto& b = t.c;
  const auto v = b.add_var("v");
  auto& g = b.graph();
  auto& a = b.arena();
  g.set_root(g.add_assign(
      v, a.binary(ExprOp::kAdd, a.constant(0x12345678), a.constant(-70000)),
      g.add_end()));
  cfsm::ReactionInputs in;
  in.set(t.trig, 0);
  check_equivalence(b, in, b.make_state());
}

TEST(SwSyn, DeepExpressionSpills) {
  // Left-leaning and right-leaning trees exercise the temp-slot discipline.
  TestCfsm t;
  auto& b = t.c;
  const auto v = b.add_var("v");
  auto& g = b.graph();
  auto& a = b.arena();
  cfsm::ExprId left = a.constant(1);
  for (int i = 2; i <= 6; ++i)
    left = a.binary(ExprOp::kAdd, left, a.constant(i));
  cfsm::ExprId right = a.constant(1);
  for (int i = 2; i <= 6; ++i)
    right = a.binary(ExprOp::kMul, a.constant(i), right);
  g.set_root(g.add_assign(
      v, a.binary(ExprOp::kSub, left, right), g.add_end()));
  cfsm::ReactionInputs in;
  in.set(t.trig, 0);
  check_equivalence(b, in, b.make_state());
}

// Property sweep: every operator compiled and compared against the
// interpreter on a grid of operand values.
class OperatorLowering : public ::testing::TestWithParam<ExprOp> {};

TEST_P(OperatorLowering, MatchesInterpreter) {
  const ExprOp op = GetParam();
  const std::int32_t operands[] = {0, 1, -1, 7, -13, 255, 4096, -32768,
                                   0x7fffffff};
  for (const std::int32_t x : operands) {
    for (const std::int32_t y : operands) {
      TestCfsm t;
      auto& b = t.c;
      const auto v = b.add_var("v");
      auto& g = b.graph();
      auto& a = b.arena();
      cfsm::ExprId e;
      if (cfsm::expr_arity(op) == 1)
        e = a.unary(op, a.constant(x));
      else
        e = a.binary(op, a.constant(x), a.constant(y));
      g.set_root(g.add_assign(v, e, g.add_end()));
      cfsm::ReactionInputs in;
      in.set(t.trig, 0);
      check_equivalence(b, in, b.make_state());
      if (cfsm::expr_arity(op) == 1) break;  // y is irrelevant
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, OperatorLowering,
    ::testing::Values(ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul, ExprOp::kDiv,
                      ExprOp::kMod, ExprOp::kNeg, ExprOp::kBitAnd,
                      ExprOp::kBitOr, ExprOp::kBitXor, ExprOp::kBitNot,
                      ExprOp::kShl, ExprOp::kShr, ExprOp::kEq, ExprOp::kNe,
                      ExprOp::kLt, ExprOp::kLe, ExprOp::kGt, ExprOp::kGe,
                      ExprOp::kLogicAnd, ExprOp::kLogicOr, ExprOp::kLogicNot),
    [](const auto& info) {
      return std::string(cfsm::expr_op_name(info.param));
    });

TEST(SwSyn, RandomizedSgraphEquivalence) {
  // Random chains of tests/assigns/emits over random expressions; the
  // compiled code must track the interpreter for every stimulus.
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    TestCfsm t;
    auto& b = t.c;
    auto& g = b.graph();
    auto& a = b.arena();
    const int n_vars = 3;
    for (int v = 0; v < n_vars; ++v)
      b.add_var("v" + std::to_string(v),
                static_cast<std::int32_t>(rng.range(-50, 50)));

    auto rand_expr = [&](auto&& self, int depth) -> cfsm::ExprId {
      if (depth == 0 || rng.chance(0.3)) {
        switch (rng.below(3)) {
          case 0: return a.constant(static_cast<std::int32_t>(rng.range(-100, 100)));
          case 1: return a.variable(static_cast<cfsm::VarId>(rng.below(n_vars)));
          default: return a.event_value(t.trig);
        }
      }
      static const ExprOp ops[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul,
                                   ExprOp::kBitXor, ExprOp::kLt, ExprOp::kEq,
                                   ExprOp::kBitAnd};
      const ExprOp op = ops[rng.below(std::size(ops))];
      return a.binary(op, self(self, depth - 1), self(self, depth - 1));
    };

    // Build a random DAG bottom-up.
    std::vector<cfsm::NodeId> frontier{g.add_end()};
    for (int i = 0; i < 8; ++i) {
      const cfsm::NodeId next =
          frontier[rng.below(frontier.size())];
      switch (rng.below(3)) {
        case 0:
          frontier.push_back(g.add_assign(
              static_cast<cfsm::VarId>(rng.below(n_vars)),
              rand_expr(rand_expr, 2), next));
          break;
        case 1:
          frontier.push_back(
              g.add_emit(t.out, rand_expr(rand_expr, 2), next));
          break;
        default: {
          const cfsm::NodeId other =
              frontier[rng.below(frontier.size())];
          frontier.push_back(
              g.add_test(rand_expr(rand_expr, 2), next, other));
          break;
        }
      }
    }
    g.set_root(frontier.back());
    ASSERT_EQ(g.validate(), "");

    cfsm::CfsmState st = b.make_state();
    for (int step = 0; step < 5; ++step) {
      cfsm::ReactionInputs in;
      in.set(t.trig, static_cast<std::int32_t>(rng.range(-1000, 1000)));
      check_equivalence(b, in, st);
      b.react(in, st);  // advance the reference state
    }
  }
}

TEST(SwSyn, MacroStreamMatchesTrace) {
  TestCfsm t;
  auto& b = t.c;
  const auto v = b.add_var("v");
  auto& g = b.graph();
  auto& a = b.arena();
  const auto end = g.add_end();
  const auto yes = g.add_emit(t.out, a.variable(v), end);
  const auto no = g.add_assign(v, a.constant(1), end);
  g.set_root(g.add_test(
      a.binary(ExprOp::kEq, a.variable(v), a.constant(0)), yes, no));

  cfsm::CfsmState st = b.make_state();
  cfsm::ReactionInputs in;
  in.set(t.trig, 0);
  const cfsm::Reaction r1 = b.react(in, st);  // v==0: taken
  const auto s1 = macro_stream_for_trace(b, r1.trace);
  // RVAR CONST EQ TIVART | RVAR AEMIT | TEND
  const std::vector<MacroOp> expect1 = {
      MacroOp::kRVar, MacroOp::kConst, MacroOp::kEq, MacroOp::kTivarT,
      MacroOp::kRVar, MacroOp::kAemit, MacroOp::kTend};
  EXPECT_EQ(s1, expect1);

  st.vars[0] = 5;
  const cfsm::Reaction r2 = b.react(in, st);  // v!=0: not taken
  const auto s2 = macro_stream_for_trace(b, r2.trace);
  const std::vector<MacroOp> expect2 = {
      MacroOp::kRVar, MacroOp::kConst, MacroOp::kEq, MacroOp::kTivarF,
      MacroOp::kConst, MacroOp::kAvv, MacroOp::kTend};
  EXPECT_EQ(s2, expect2);
}

TEST(SwSyn, MacroOpNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumMacroOps; ++i) {
    const auto op = static_cast<MacroOp>(i);
    EXPECT_EQ(macro_op_from_name(macro_op_name(op)), op);
  }
  EXPECT_EQ(macro_op_from_name("NOSUCH"), MacroOp::kMacroOpCount);
}

TEST(SwSyn, AddressTraceCoversPrologueAndPath) {
  TestCfsm t;
  auto& b = t.c;
  const auto v = b.add_var("v");
  auto& g = b.graph();
  g.set_root(g.add_assign(v, b.arena().constant(1), g.add_end()));
  const SwImage img = compile_cfsm(b, 0x40, 0x800);
  cfsm::CfsmState st = b.make_state();
  cfsm::ReactionInputs in;
  in.set(t.trig, 0);
  const cfsm::Reaction r = b.react(in, st);
  const auto trace = address_trace(img, r.trace);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front(), 0x40u * iss::kInstrBytes);
  // Addresses are word-aligned and within the image.
  for (const auto addr : trace) {
    EXPECT_EQ(addr % iss::kInstrBytes, 0u);
    EXPECT_LT(addr / iss::kInstrBytes, img.code_base_word + img.code.size());
  }
}

TEST(SwSyn, CharacterizationTemplatesHalt) {
  iss::Iss iss(iss::InstructionPowerModel::sparclite(), {});
  for (std::size_t i = 0; i < kNumMacroOps; ++i) {
    const auto prog = characterization_template(static_cast<MacroOp>(i));
    iss.load_program(prog, 0x100);
    iss.reset_cpu();
    iss.set_pc(0x100);
    const auto r = iss.run(10'000);
    EXPECT_TRUE(r.halted) << macro_op_name(static_cast<MacroOp>(i));
  }
}

TEST(Rtos, PriorityPicksHighest) {
  RtosModel rtos;
  rtos.set_priority(0, 1);
  rtos.set_priority(1, 5);
  rtos.set_priority(2, 3);
  EXPECT_EQ(rtos.pick_next({0, 1, 2}), 1u);
  EXPECT_EQ(rtos.pick_next({0, 2}), 1u);
  EXPECT_EQ(rtos.pick_next({0}), 0u);
}

TEST(Rtos, FifoWithinPriorityLevel) {
  RtosModel rtos;
  rtos.set_priority(3, 2);
  rtos.set_priority(4, 2);
  EXPECT_EQ(rtos.pick_next({4, 3}), 0u);  // first in queue order wins ties
}

TEST(Rtos, DispatchEnergyPositive) {
  RtosModel rtos;
  EXPECT_GT(rtos.dispatch_energy(), 0.0);
  EXPECT_GT(rtos.dispatch_cycles(), 0u);
}

}  // namespace
}  // namespace socpower::swsyn
