// Telemetry subsystem contracts: span nesting and ordering, bounded
// drop-counting rings, deterministic multi-threaded counter merges, and
// Chrome trace-event JSON well-formedness (checked by an actual parser, not
// substring matching).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace socpower::telemetry {
namespace {

/// Minimal recursive-descent JSON syntax checker. Accepts exactly the RFC
/// 8259 grammar (no trailing commas, no comments); the exporter must produce
/// output any real consumer (chrome://tracing, python json) can load.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (!strchr_escape(e)) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool literal(const char* lit) {
    for (; *lit; ++lit, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *lit) return false;
    }
    return true;
  }
  static bool strchr_escape(char e) {
    return e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
           e == 'n' || e == 'r' || e == 't';
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit()) return false;
    while (digit_peek()) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!digit()) return false;
      while (digit_peek()) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digit()) return false;
      while (digit_peek()) ++pos_;
    }
    return pos_ > start;
  }
  bool digit() {
    if (!digit_peek()) return false;
    ++pos_;
    return true;
  }
  bool digit_peek() const {
    return pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]));
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Enables collection for one test and restores the previous configuration
/// (each ctest test is its own process, but the binary can also run whole).
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool trace) : saved_(config()) {
    TelemetryConfig cfg = saved_;
    cfg.enabled = true;
    cfg.trace = trace;
    configure(cfg);
    reset();
  }
  ~ScopedTelemetry() {
    reset();
    configure(saved_);
  }

 private:
  TelemetryConfig saved_;
};

TEST(TelemetryRegistry, SameNameReturnsSameHandle) {
  Registry r;
  Counter& a = r.counter("x.count");
  Counter& b = r.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &r.counter("y.count"));
  EXPECT_EQ(&r.gauge("g"), &r.gauge("g"));
  EXPECT_EQ(&r.histogram("h", 0, 10, 4), &r.histogram("h", 0, 99, 7));
}

TEST(TelemetryRegistry, CountersGaugesHistogramsCollect) {
  ScopedTelemetry scope(/*trace=*/false);
  Registry r;
  r.counter("c").add(3);
  r.counter("c").add();
  r.gauge("g").set(5);
  r.gauge("g").set(9);
  r.gauge("g").set(2);
  r.histogram("h", 0, 100, 10).observe(10);
  r.histogram("h", 0, 100, 10).observe(30);

  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.counter_or("c"), 4u);
  EXPECT_EQ(s.counter_or("absent", 77), 77u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].value, 2);
  EXPECT_EQ(s.gauges[0].peak, 9);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(s.histograms[0].mean, 20.0);

  r.reset();
  const Snapshot z = r.snapshot();
  EXPECT_EQ(z.counter_or("c"), 0u);
  EXPECT_EQ(z.gauges[0].peak, 0);
  EXPECT_EQ(z.histograms[0].count, 0u);
}

TEST(TelemetryRegistry, DisabledMutationsAreDropped) {
  TelemetryConfig off;
  off.enabled = false;
  const TelemetryConfig saved = config();
  configure(off);
  Registry r;
  r.counter("c").add(10);
  r.gauge("g").set(10);
  r.histogram("h", 0, 1, 2).observe(0.5);
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.counter_or("c"), 0u);
  EXPECT_EQ(s.gauges[0].peak, 0);
  EXPECT_EQ(s.histograms[0].count, 0u);
  configure(saved);
}

TEST(TelemetryRegistry, SnapshotJsonParsesAndTableRenders) {
  ScopedTelemetry scope(/*trace=*/false);
  Registry r;
  r.counter("a.weird\"name\\").add(1);
  r.gauge("g").set(-3);
  r.histogram("h", 0, 10, 4).observe(2.5);
  const Snapshot s = r.snapshot();
  const std::string json = s.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  const std::string table = s.render_table();
  EXPECT_NE(table.find("a.weird"), std::string::npos);
  EXPECT_NE(table.find("peak"), std::string::npos);
}

TEST(TelemetryCounters, MultiThreadedMergeIsDeterministic) {
  ScopedTelemetry scope(/*trace=*/false);
  // Relaxed adds commute: the merged total must equal the serial total for
  // every thread count, which is what keeps reported hit rates bit-stable
  // across SOCPOWER_THREADS settings.
  constexpr std::size_t kN = 20'000;
  for (const unsigned threads : {1u, 2u, 4u}) {
    Registry r;
    Counter& c = r.counter("merge");
    ThreadPool pool(threads);
    pool.parallel_for(kN, [&](std::size_t i) { c.add(i % 7 + 1); });
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < kN; ++i) expect += i % 7 + 1;
    EXPECT_EQ(r.snapshot().counter_or("merge"), expect) << threads;
  }
}

TEST(TelemetryTrace, SpanNestingAndOrdering) {
  ScopedTelemetry scope(/*trace=*/true);
  collector().clear();
  {
    SOCPOWER_TRACE_SPAN("outer", 100);
    {
      SOCPOWER_TRACE_SPAN("inner", 200, 42);
      SOCPOWER_TRACE_INSTANT("mark", 150);
    }
  }
  const auto threads = collector().events();
  ASSERT_EQ(threads.size(), 1u);
  const auto& evs = threads[0].events;
  ASSERT_EQ(evs.size(), 3u);
  // Scope exit order: instant first, then inner, then outer.
  EXPECT_STREQ(evs[0].name, "mark");
  EXPECT_LT(evs[0].dur_ns, 0);  // instant
  EXPECT_STREQ(evs[1].name, "inner");
  EXPECT_STREQ(evs[2].name, "outer");
  // The inner span nests inside the outer one on the timeline.
  EXPECT_GE(evs[1].start_ns, evs[2].start_ns);
  EXPECT_LE(evs[1].start_ns + evs[1].dur_ns,
            evs[2].start_ns + evs[2].dur_ns);
  EXPECT_EQ(evs[1].sim_time, 200u);
  EXPECT_EQ(evs[1].arg, 42u);
  EXPECT_TRUE(evs[1].flags & TraceEvent::kHasArg);
  EXPECT_EQ(evs[2].sim_time, 100u);
  EXPECT_FALSE(evs[2].flags & TraceEvent::kHasArg);
}

TEST(TelemetryTrace, DisabledSpansRecordNothing) {
  ScopedTelemetry scope(/*trace=*/false);  // counters on, tracing off
  collector().clear();
  {
    SOCPOWER_TRACE_SPAN("quiet");
    SOCPOWER_TRACE_INSTANT("silent");
  }
  EXPECT_EQ(collector().event_count(), 0u);
}

TEST(TelemetryTrace, RingBoundsAndDropCounter) {
  TraceCollector tc(/*ring_capacity=*/8);
  TraceEvent ev;
  ev.name = "e";
  for (int i = 0; i < 20; ++i) {
    ev.start_ns = i;
    tc.record(ev);
  }
  EXPECT_EQ(tc.event_count(), 8u);
  EXPECT_EQ(tc.dropped(), 12u);
  const auto threads = tc.events();
  ASSERT_EQ(threads.size(), 1u);
  // The ring keeps the oldest events (head of the run) and drops the tail.
  EXPECT_EQ(threads[0].events.front().start_ns, 0);
  EXPECT_EQ(threads[0].events.back().start_ns, 7);

  tc.clear();
  EXPECT_EQ(tc.event_count(), 0u);
  EXPECT_EQ(tc.dropped(), 0u);
}

TEST(TelemetryTrace, PerThreadRingsMergeInExport) {
  ScopedTelemetry scope(/*trace=*/false);
  TraceCollector tc;
  constexpr int kPerThread = 50;
  auto work = [&] {
    TraceEvent ev;
    ev.name = "w";
    for (int i = 0; i < kPerThread; ++i) tc.record(ev);
  };
  std::thread a(work), b(work);
  work();
  a.join();
  b.join();
  EXPECT_EQ(tc.event_count(), 3u * kPerThread);
  EXPECT_EQ(tc.events().size(), 3u);
  EXPECT_EQ(tc.dropped(), 0u);
}

TEST(TelemetryTrace, ChromeJsonParsesWithParser) {
  ScopedTelemetry scope(/*trace=*/true);
  collector().clear();
  registry().counter("json.test\"quoted").add(2);
  {
    SOCPOWER_TRACE_SPAN("phase \"odd\" name\\", 7, 3);
    SOCPOWER_TRACE_INSTANT("tick", 9);
  }
  const Snapshot snap = registry().snapshot();
  const std::string json = collector().chrome_trace_json(&snap);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Chrome trace-event essentials the viewers rely on.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_time\":7"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(TelemetryConfig, TraceImpliesEnabledAndConfigRoundTrips) {
  const TelemetryConfig saved = config();
  TelemetryConfig cfg;
  cfg.enabled = false;
  cfg.trace = true;  // normalized away: tracing requires the master switch
  cfg.ring_capacity = 123;
  configure(cfg);
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(config().ring_capacity, 123u);

  set_enabled(true, true);
  EXPECT_TRUE(enabled());
  EXPECT_TRUE(trace_enabled());
  configure(saved);
}

}  // namespace
}  // namespace socpower::telemetry
