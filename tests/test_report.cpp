// Run-report rendering and CSV export tests.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "systems/tcpip.hpp"
#include "telemetry/telemetry.hpp"

namespace socpower::core {
namespace {

/// Enables counters for one test and restores the prior configuration.
class ScopedTelemetry {
 public:
  ScopedTelemetry() : saved_(telemetry::config()) {
    telemetry::TelemetryConfig cfg = saved_;
    cfg.enabled = true;
    telemetry::configure(cfg);
    telemetry::reset();
  }
  ~ScopedTelemetry() {
    telemetry::reset();
    telemetry::configure(saved_);
  }

 private:
  telemetry::TelemetryConfig saved_;
};

struct ReportFixture : ::testing::Test {
  ReportFixture() : sys({.num_packets = 3, .packet_bytes = 32}) {}

  void run(bool keep_samples) {
    CoEstimatorConfig cfg;
    cfg.keep_power_samples = keep_samples;
    est = std::make_unique<CoEstimator>(&sys.network(), cfg);
    sys.configure(*est);
    est->prepare();
    results = est->run(sys.stimulus());
  }

  systems::TcpIpSystem sys;
  std::unique_ptr<CoEstimator> est;
  RunResults results;
};

TEST_F(ReportFixture, ReportListsEveryProcessWithImplementation) {
  run(/*keep_samples=*/false);
  ReportOptions opt;
  opt.include_waveforms = false;
  const std::string report =
      render_report(sys.network(), *est, results, opt);
  EXPECT_NE(report.find("create_pack"), std::string::npos);
  EXPECT_NE(report.find("packet_queue"), std::string::npos);
  EXPECT_NE(report.find("ip_check"), std::string::npos);
  EXPECT_NE(report.find("checksum"), std::string::npos);
  EXPECT_NE(report.find("(bus)"), std::string::npos);
  EXPECT_NE(report.find("(icache)"), std::string::npos);
  EXPECT_NE(report.find("SW"), std::string::npos);
  EXPECT_NE(report.find("HW"), std::string::npos);
}

TEST_F(ReportFixture, BackendBreakdownRenderedWhenTelemetryEnabled) {
  ScopedTelemetry telemetry;
  run(/*keep_samples=*/false);
  ReportOptions opt;
  opt.include_waveforms = false;
  const std::string report =
      render_report(sys.network(), *est, results, opt);
  EXPECT_NE(report.find("--- estimator backends ---"), std::string::npos);
  // Each backend that did work reports under its registry name, with the
  // "estimator.<name>." prefix stripped by the report.
  EXPECT_NE(report.find("sw.iss"), std::string::npos);
  EXPECT_NE(report.find("invocations"), std::string::npos);
  EXPECT_NE(report.find("cache.icache"), std::string::npos);
  EXPECT_NE(report.find("bus.arbiter"), std::string::npos);
}

TEST_F(ReportFixture, BackendBreakdownAbsentWhenTelemetryDisabled) {
  run(/*keep_samples=*/false);
  ReportOptions opt;
  opt.include_waveforms = false;
  const std::string report =
      render_report(sys.network(), *est, results, opt);
  EXPECT_EQ(report.find("--- estimator backends ---"), std::string::npos);
}

TEST_F(ReportFixture, WaveformsRenderedWhenSamplesKept) {
  run(/*keep_samples=*/true);
  const std::string report = render_report(sys.network(), *est, results);
  EXPECT_NE(report.find("power waveform"), std::string::npos);
  EXPECT_NE(report.find("peaks at cycles:"), std::string::npos);
  EXPECT_NE(report.find('#'), std::string::npos);
}

TEST_F(ReportFixture, SharesSumToRoughlyHundredPercent) {
  run(false);
  ReportOptions opt;
  opt.include_waveforms = false;
  const std::string report =
      render_report(sys.network(), *est, results, opt);
  // Crude but effective: extract the share column values and sum them.
  double sum = 0;
  std::istringstream in(report);
  std::string line;
  while (std::getline(in, line)) {
    // Rows look like "| name | SW | 1.23 uJ | 45.6 | ...".
    const auto p1 = line.rfind("| ");
    if (p1 == std::string::npos) continue;
    std::size_t col = 0, pos = 0;
    std::vector<std::string> cells;
    while ((pos = line.find("| ", pos)) != std::string::npos) {
      const auto end = line.find(" |", pos + 2);
      if (end == std::string::npos) break;
      cells.push_back(line.substr(pos + 2, end - pos - 2));
      pos = end;
      ++col;
    }
    if (cells.size() >= 4) {
      try {
        sum += std::stod(cells[3]);
      } catch (...) {
      }
    }
  }
  EXPECT_NEAR(sum, 100.0, 1.5);
}

TEST_F(ReportFixture, CsvHasHeaderAndAlignedRows) {
  run(true);
  const std::string csv = waveforms_csv(*est, /*window_cycles=*/128);
  std::istringstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("start_cycle", 0), 0u);
  const auto cols =
      static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')) +
      1;
  EXPECT_EQ(cols, 1u + sys.network().cfsm_count() + 2);  // + bus + icache
  std::string row;
  std::size_t rows = 0;
  while (std::getline(in, row)) {
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(row.begin(), row.end(), ',')) +
                  1,
              cols);
    ++rows;
  }
  EXPECT_GT(rows, 2u);
}

TEST_F(ReportFixture, CsvPowerIntegratesBackToTotalEnergy) {
  run(true);
  const sim::SimTime window = 64;
  const std::string csv = waveforms_csv(*est, window);
  // Sum all component watts * window seconds == total energy.
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);  // header
  double joules = 0;
  const double wsec = ElectricalParams{}.seconds(window);
  while (std::getline(in, line)) {
    std::size_t pos = line.find(',');
    while (pos != std::string::npos) {
      const auto next = line.find(',', pos + 1);
      joules += std::stod(line.substr(pos + 1, next - pos - 1)) * wsec;
      pos = next;
    }
  }
  EXPECT_NEAR(joules, results.total_energy, results.total_energy * 1e-6);
}

}  // namespace
}  // namespace socpower::core
