// Tests for the shipped DSL model files under models/: they must parse,
// map, and behave correctly (the UART transmitter's line sequence is
// checked bit-for-bit against the framing spec).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cfsm/dsl.hpp"
#include "core/coestimator.hpp"

namespace socpower {
namespace {

std::string read_model(const std::string& name) {
  const std::string path =
      std::string(SOCPOWER_SOURCE_DIR) + "/models/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Models, AllShippedModelsParse) {
  for (const char* name :
       {"blinker.cfsm", "figure1.cfsm", "uart_tx.cfsm"}) {
    cfsm::Network net;
    const auto r = cfsm::parse_network(read_model(name), net);
    EXPECT_TRUE(r.ok()) << name << ": " << r.error;
    EXPECT_GT(net.cfsm_count(), 0u) << name;
    EXPECT_TRUE(net.validate().empty()) << name;
  }
}

TEST(Models, UartTransmitsCorrectFrames) {
  cfsm::Network net;
  ASSERT_TRUE(cfsm::parse_network(read_model("uart_tx.cfsm"), net).ok());
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&net, cfg);
  est.map_sw(net.cfsm_id("framer"), 1);
  est.map_hw(net.cfsm_id("shifter"));
  est.prepare();

  const std::uint8_t bytes[] = {0x00, 0xFF, 0xA5, 0x3C};
  sim::Stimulus stim;
  for (std::size_t i = 0; i < std::size(bytes); ++i)
    stim.add(5 + 500 * static_cast<sim::SimTime>(i), net.event_id("SEND"),
             bytes[i]);
  for (sim::SimTime t = 16; t < 3000; t += 16)
    stim.add(t, net.event_id("BAUD"));

  std::vector<int> line;
  const auto txd = net.event_id("TXD");
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == txd) line.push_back(o.value);
      });
  const auto r = est.run(stim);
  ASSERT_FALSE(r.truncated);
  ASSERT_EQ(line.size(), std::size(bytes) * 11);

  std::size_t pos = 0;
  for (const std::uint8_t b : bytes) {
    int parity = 0;
    for (int k = 0; k < 8; ++k) parity ^= (b >> k) & 1;
    std::vector<int> expect;
    expect.push_back(0);  // start bit
    for (int k = 0; k < 8; ++k) expect.push_back((b >> k) & 1);
    expect.push_back(parity);
    expect.push_back(1);  // stop bit
    for (const int bit : expect) {
      EXPECT_EQ(line[pos], bit) << "byte " << int(b) << " pos " << pos;
      ++pos;
    }
  }
}

TEST(Models, Figure1ShowsSeparateVsCoGap) {
  cfsm::Network net;
  ASSERT_TRUE(cfsm::parse_network(read_model("figure1.cfsm"), net).ok());
  core::CoEstimator est(&net, {});
  est.map_sw(net.cfsm_id("producer"), 1);
  est.map_hw(net.cfsm_id("timer"));
  est.map_hw(net.cfsm_id("consumer"));
  est.prepare();
  sim::Stimulus stim;
  for (int p = 0; p < 4; ++p)
    stim.add(1 + 2 * static_cast<sim::SimTime>(p), net.event_id("START"));
  for (sim::SimTime t = 24; t <= 15000; t += 24)
    stim.add(t, net.event_id("TIMER_TICK"));
  const auto co = est.run(stim);
  const auto sep = est.run_separate(stim);
  const auto cons = static_cast<std::size_t>(net.cfsm_id("consumer"));
  EXPECT_LT(sep.process_energy[cons], 0.8 * co.process_energy[cons]);
}

}  // namespace
}  // namespace socpower
