// RT-level power estimator tests: operator macro energies, reaction
// estimates, and fidelity against the gate-level reference on a real system.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/coestimator.hpp"
#include "hwsyn/rtl_power.hpp"
#include "systems/tcpip.hpp"
#include "util/stats.hpp"

namespace socpower::hwsyn {
namespace {

using cfsm::ExprOp;

TEST(RtlPower, OperatorEnergiesArePositiveAndOrdered) {
  RtlPowerEstimator est;
  // Multiplier >> adder >> bitwise AND >> single-bit compare output.
  EXPECT_GT(est.op_energy(ExprOp::kMul), est.op_energy(ExprOp::kAdd));
  EXPECT_GT(est.op_energy(ExprOp::kAdd), est.op_energy(ExprOp::kBitAnd));
  for (const auto op : {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul,
                        ExprOp::kBitXor, ExprOp::kEq, ExprOp::kLt,
                        ExprOp::kLogicAnd})
    EXPECT_GT(est.op_energy(op), 0.0);
  // Constant shifts are pure wiring in hardware: free at RT level.
  EXPECT_DOUBLE_EQ(est.op_energy(ExprOp::kShl), 0.0);
  EXPECT_GT(est.reg_write_energy(), 0.0);
  EXPECT_GT(est.emit_energy(), 0.0);
}

TEST(RtlPower, EnergyScalesWithWidthAndVdd) {
  RtlPowerConfig narrow;
  narrow.width = 8;
  RtlPowerConfig wide;
  wide.width = 32;
  RtlPowerEstimator n(narrow), w(wide);
  EXPECT_GT(w.op_energy(ExprOp::kAdd), 2.0 * n.op_energy(ExprOp::kAdd));

  RtlPowerConfig hi;
  hi.electrical.vdd_volts = 3.3;
  RtlPowerConfig lo;
  lo.electrical.vdd_volts = 1.65;
  RtlPowerEstimator h(hi), l(lo);
  EXPECT_NEAR(h.op_energy(ExprOp::kAdd) / l.op_energy(ExprOp::kAdd), 4.0,
              1e-9);
}

TEST(RtlPower, ReactionEstimateSumsActivatedOperators) {
  cfsm::Network net;
  const auto trig = net.declare_event("T");
  cfsm::Cfsm& c = net.add_cfsm("x");
  c.add_input(trig);
  const auto v = c.add_var("v");
  auto& g = c.graph();
  auto& a = c.arena();
  const auto end = g.add_end();
  const auto heavy = g.add_assign(
      v, a.binary(ExprOp::kMul, a.variable(v), a.variable(v)), end);
  const auto light = g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.constant(1)), end);
  g.set_root(g.add_test(a.event_value(trig), heavy, light));

  RtlPowerEstimator est;
  cfsm::CfsmState st = c.make_state();
  cfsm::ReactionInputs in;
  in.set(trig, 1);
  const auto r_heavy = c.react(in, st);
  in.clear();
  in.set(trig, 0);
  const auto r_light = c.react(in, st);
  const Joules e_heavy = est.estimate_reaction(c, r_heavy.trace, in);
  const Joules e_light = est.estimate_reaction(c, r_light.trace, in);
  EXPECT_GT(e_heavy, e_light);  // multiplier path costs more than adder path
}

TEST(RtlPower, DataDensityScalesEstimate) {
  cfsm::Network net;
  const auto trig = net.declare_event("T");
  cfsm::Cfsm& c = net.add_cfsm("x");
  c.add_input(trig);
  const auto v = c.add_var("v");
  auto& g = c.graph();
  auto& a = c.arena();
  g.set_root(g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.event_value(trig)),
      g.add_end()));
  RtlPowerEstimator est;
  cfsm::CfsmState st = c.make_state();
  cfsm::ReactionInputs sparse, dense;
  sparse.set(trig, 0);
  dense.set(trig, -1);  // all 32 bits set
  const auto tr = c.react(sparse, st).trace;
  EXPECT_GT(est.estimate_reaction(c, tr, dense),
            est.estimate_reaction(c, tr, sparse));
}

TEST(RtlPower, TracksGateLevelOnTcpIpChecksum) {
  // Fidelity: the RT-level estimate of the checksum ASIC must land in the
  // same ballpark as the gate-level reference over a full workload (it is
  // a structural macro model: factor-of-3 agreement is the expectation),
  // and functionality must be untouched.
  auto run_with = [](bool rtl) {
    systems::TcpIpParams p;
    p.num_packets = 8;
    p.packet_bytes = 64;
    p.checksum_rtl_estimator = rtl;
    systems::TcpIpSystem sys(p);
    core::CoEstimator est(&sys.network(), {});
    sys.configure(est);
    est.prepare();
    const auto r = est.run(sys.stimulus());
    EXPECT_EQ(sys.packets_ok(est), 8);
    return r.process_energy[static_cast<std::size_t>(sys.checksum())];
  };
  const Joules gate = run_with(false);
  const Joules rtl = run_with(true);
  EXPECT_GT(rtl, 0.0);
  EXPECT_GT(rtl, gate / 3.0);
  EXPECT_LT(rtl, gate * 3.0);
}

TEST(RtlPower, WorksUnderHwCachingAcceleration) {
  systems::TcpIpParams p;
  p.num_packets = 6;
  p.packet_bytes = 32;
  p.checksum_rtl_estimator = true;
  systems::TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  cfg.accel = core::Acceleration::kCaching;
  cfg.accelerate_hw = true;
  cfg.energy_cache.thresh_variance = 1.0;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(sys.packets_ok(est), 6);
  EXPECT_GT(r.cache_hits_served, 0u);
}

}  // namespace
}  // namespace socpower::hwsyn
