// Hardware-synthesis edge cases: processes without variables or outputs,
// duplicate emissions of one event in a path, diamond-shaped DAGs with
// shared tails, and reset interaction with the netlist state.
#include <gtest/gtest.h>

#include "cfsm/dsl.hpp"
#include "core/coestimator.hpp"
#include "hw/gatesim.hpp"
#include "hwsyn/synth.hpp"

namespace socpower::hwsyn {
namespace {

TEST(HwSynEdge, PureCombinationalProcess) {
  // No variables at all: just an input-to-output function.
  cfsm::Network net;
  const auto ok = cfsm::parse_network(R"(
    event IN, OUT;
    process comb { input IN; output OUT; emit OUT(val(IN) * 3 + 1); }
  )", net);
  ASSERT_TRUE(ok.ok()) << ok.error;
  const HwImage img = synthesize_cfsm(net.cfsm(0));
  EXPECT_EQ(img.netlist->dff_count(), 0u);
  hw::GateSim sim(img.netlist.get());
  cfsm::ReactionInputs in;
  in.set(net.event_id("IN"), 13);
  stage_hw_reaction(sim, img, in);
  sim.step();
  const auto ems = read_hw_emissions(sim, img);
  ASSERT_EQ(ems.size(), 1u);
  EXPECT_EQ(ems[0].value, 40);
}

TEST(HwSynEdge, ProcessWithNoOutputs) {
  cfsm::Network net;
  const auto ok = cfsm::parse_network(R"(
    event IN;
    process sink { input IN; var total = 0; total = total + val(IN); }
  )", net);
  ASSERT_TRUE(ok.ok()) << ok.error;
  const HwImage img = synthesize_cfsm(net.cfsm(0));
  hw::GateSim sim(img.netlist.get());
  for (const std::int32_t v : {5, -3, 100}) {
    cfsm::ReactionInputs in;
    in.set(net.event_id("IN"), v);
    stage_hw_reaction(sim, img, in);
    sim.step();
  }
  EXPECT_EQ(read_hw_var(sim, img, 0), 102);
  EXPECT_TRUE(read_hw_emissions(sim, img).empty());
}

TEST(HwSynEdge, SameEventEmittedTwiceLastValueWins) {
  // Both the behavioral model (at the receiver) and the synthesized output
  // port resolve duplicate same-instant emissions to the last value.
  cfsm::Network net;
  const auto trig = net.declare_event("T");
  const auto out = net.declare_event("OUT");
  cfsm::Cfsm& c = net.add_cfsm("p");
  c.add_input(trig);
  c.add_output(out);
  auto& g = c.graph();
  auto& a = c.arena();
  g.set_root(g.add_emit(out, a.constant(1),
                        g.add_emit(out, a.constant(2), g.add_end())));
  const HwImage img = synthesize_cfsm(c);
  hw::GateSim sim(img.netlist.get());
  cfsm::ReactionInputs in;
  in.set(trig, 0);
  stage_hw_reaction(sim, img, in);
  sim.step();
  const auto ems = read_hw_emissions(sim, img);
  ASSERT_EQ(ems.size(), 1u);
  EXPECT_EQ(ems[0].value, 2);
}

TEST(HwSynEdge, DiamondDagSharedTailMergesCorrectly) {
  // Two branches write different values, converge, and the shared tail adds
  // to whichever value flowed in.
  cfsm::Network net;
  const auto trig = net.declare_event("T");
  cfsm::Cfsm& c = net.add_cfsm("p");
  c.add_input(trig);
  const auto v = c.add_var("v");
  auto& g = c.graph();
  auto& a = c.arena();
  using Op = cfsm::ExprOp;
  const auto end = g.add_end();
  const auto shared = g.add_assign(
      v, a.binary(Op::kAdd, a.variable(v), a.constant(100)), end);
  const auto left = g.add_assign(v, a.constant(1), shared);
  const auto right = g.add_assign(v, a.constant(2), shared);
  g.set_root(g.add_test(
      a.binary(Op::kGt, a.event_value(trig), a.constant(0)), left, right));

  const HwImage img = synthesize_cfsm(c);
  hw::GateSim sim(img.netlist.get());
  cfsm::ReactionInputs pos, neg;
  pos.set(trig, 5);
  neg.set(trig, -5);
  stage_hw_reaction(sim, img, pos);
  sim.step();
  EXPECT_EQ(read_hw_var(sim, img, 0), 101);
  stage_hw_reaction(sim, img, neg);
  sim.step();
  EXPECT_EQ(read_hw_var(sim, img, 0), 102);
}

TEST(HwSynEdge, ResetRestoresRegistersMidRun) {
  cfsm::Network net;
  const auto ok = cfsm::parse_network(R"(
    event GO, RST;
    process acc { input GO; reset RST; var total = 10; total = total + 1; }
  )", net);
  ASSERT_TRUE(ok.ok()) << ok.error;
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&net, cfg);
  est.map_hw(net.cfsm_id("acc"));
  est.prepare();
  sim::Stimulus stim;
  stim.add(1, net.event_id("GO"));
  stim.add(2, net.event_id("GO"));
  stim.add(3, net.event_id("RST"));
  stim.add(4, net.event_id("GO"));
  est.run(stim);
  // 10 -> 11 -> 12 -> reset to 10 -> 11.
  EXPECT_EQ(est.process_state(net.cfsm_id("acc")).vars[0], 11);
}

TEST(HwSynEdge, WideConstantInHardwarePath) {
  cfsm::Network net;
  const auto ok = cfsm::parse_network(R"(
    event T, OUT;
    process p { input T; output OUT; emit OUT(0x12345678 ^ val(T)); }
  )", net);
  ASSERT_TRUE(ok.ok()) << ok.error;
  const HwImage img = synthesize_cfsm(net.cfsm(0));
  hw::GateSim sim(img.netlist.get());
  cfsm::ReactionInputs in;
  in.set(net.event_id("T"), 0x0F0F0F0F);
  stage_hw_reaction(sim, img, in);
  sim.step();
  EXPECT_EQ(read_hw_emissions(sim, img)[0].value,
            0x12345678 ^ 0x0F0F0F0F);
}

}  // namespace
}  // namespace socpower::hwsyn
