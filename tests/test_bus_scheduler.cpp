// Grant-level bus scheduler tests: block-boundary re-arbitration, priority
// preemption, FIFO fairness within a master, energy/cycle accounting, and
// equivalence with the atomic-transfer model when there is no contention.
#include <gtest/gtest.h>

#include "bus/bus_model.hpp"

namespace socpower::bus {
namespace {

BusParams params4() {
  BusParams p;
  p.dma_block_size = 4;
  p.handshake_cycles = 2;
  p.line_cap_f = 1e-9;
  return p;
}

BusRequest req(int master, int prio, std::size_t bytes,
               std::uint8_t fill = 0xAA) {
  BusRequest r;
  r.master = master;
  r.priority = prio;
  r.data.assign(bytes, fill);
  return r;
}

std::vector<BusScheduler::Completion> drain(BusScheduler& s) {
  std::vector<BusScheduler::Completion> all;
  while (s.has_work()) {
    for (auto& c : s.advance(s.next_boundary())) all.push_back(std::move(c));
  }
  return all;
}

TEST(BusScheduler, SingleTransferTimings) {
  BusScheduler s(params4());
  s.submit(10, req(0, 0, 10));  // 3 grants: 4+4+2 bytes
  const auto done = drain(s);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].result.start, 10u);
  EXPECT_EQ(done[0].result.grants, 3u);
  EXPECT_EQ(done[0].result.busy_cycles, 3u * 2 + 10u);
  EXPECT_EQ(done[0].result.end, 10u + 16u);
  EXPECT_EQ(done[0].result.wait_cycles, 0u);
}

TEST(BusScheduler, HighPriorityPreemptsAtBlockBoundary) {
  BusScheduler s(params4());
  s.submit(0, req(0, /*prio=*/1, 12));  // grants end at 6, 12, 18
  s.submit(1, req(1, /*prio=*/9, 4));
  const auto done = drain(s);
  ASSERT_EQ(done.size(), 2u);
  // Master 1 gets the bus at the first boundary (cycle 6), master 0's
  // transfer stretches around it.
  const auto& hi = done[0].master == 1 ? done[0] : done[1];
  const auto& lo = done[0].master == 1 ? done[1] : done[0];
  EXPECT_EQ(hi.result.start, 6u);
  EXPECT_EQ(hi.result.end, 12u);
  EXPECT_EQ(hi.result.wait_cycles, 5u);
  EXPECT_EQ(lo.result.start, 0u);
  EXPECT_EQ(lo.result.end, 18u + 6u);  // one block displaced
}

TEST(BusScheduler, LowPriorityWaitsForAllBlocks) {
  BusScheduler s(params4());
  s.submit(0, req(0, /*prio=*/9, 12));
  s.submit(1, req(1, /*prio=*/1, 4));
  const auto done = drain(s);
  const auto& lo = done[0].master == 1 ? done[0] : done[1];
  EXPECT_EQ(lo.result.start, 18u);  // after the whole high-prio transfer
  EXPECT_EQ(lo.result.wait_cycles, 17u);
}

TEST(BusScheduler, GrantInProgressIsNeverPreempted) {
  BusScheduler s(params4());
  s.submit(0, req(0, 1, 4));  // one grant: 0..6
  s.submit(2, req(1, 9, 4));  // arrives mid-grant
  const auto done = drain(s);
  const auto& hi = done[0].master == 1 ? done[0] : done[1];
  EXPECT_EQ(hi.result.start, 6u);  // waits for the boundary, not cycle 2
}

TEST(BusScheduler, FifoWithinEqualPriority) {
  BusScheduler s(params4());
  s.submit(0, req(5, 3, 4));
  s.submit(0, req(5, 3, 4));
  s.submit(0, req(2, 3, 4));  // lower master id wins ties at arbitration
  const auto done = drain(s);
  ASSERT_EQ(done.size(), 3u);
  // All submitted at t=0: master 2 first, then master 5's two in order.
  EXPECT_EQ(done[0].master, 2);
  EXPECT_EQ(done[1].master, 5);
  EXPECT_EQ(done[2].master, 5);
  EXPECT_LT(done[1].result.start, done[2].result.start);
}

TEST(BusScheduler, IdleGapsAreSkippedNotBilled) {
  BusScheduler s(params4());
  s.submit(0, req(0, 0, 4));
  s.submit(100, req(0, 0, 4));
  const auto done = drain(s);
  EXPECT_EQ(done[0].result.end, 6u);
  EXPECT_EQ(done[1].result.start, 100u);
  EXPECT_EQ(done[1].result.wait_cycles, 0u);
}

TEST(BusScheduler, EmptyPayloadIsOneHandshake) {
  BusScheduler s(params4());
  s.submit(7, req(0, 0, 0));
  const auto done = drain(s);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].result.grants, 1u);
  EXPECT_EQ(done[0].result.busy_cycles, 2u);
  EXPECT_GT(done[0].result.energy, 0.0);
}

TEST(BusScheduler, EnergyMatchesAtomicModelWithoutContention) {
  // One master, sequential transfers: scheduler and BusModel must agree on
  // energy, grants and bytes exactly.
  BusScheduler s(params4());
  BusModel m(params4());
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 23; ++i)
    payload.push_back(static_cast<std::uint8_t>(i * 37));
  BusRequest r1;
  r1.data = payload;
  BusRequest r2;
  r2.addr = 0x40;
  r2.data.assign(9, 0x5C);

  s.submit(0, r1);
  auto d1 = drain(s);
  s.submit(1000, r2);
  auto d2 = drain(s);
  const auto m1 = m.transfer(0, r1);
  const auto m2 = m.transfer(1000, r2);
  EXPECT_DOUBLE_EQ(d1[0].result.energy, m1.energy);
  EXPECT_DOUBLE_EQ(d2[0].result.energy, m2.energy);
  EXPECT_EQ(s.totals().grants, m.totals().grants);
  EXPECT_EQ(s.totals().bytes, m.totals().bytes);
  EXPECT_EQ(s.totals().addr_toggles, m.totals().addr_toggles);
  EXPECT_EQ(s.totals().data_toggles, m.totals().data_toggles);
}

TEST(BusScheduler, AdvanceIsIncremental) {
  BusScheduler s(params4());
  s.submit(0, req(0, 0, 8));  // grants end at 6 and 12
  auto first = s.advance(6);
  EXPECT_TRUE(first.empty());  // transfer not finished yet
  EXPECT_TRUE(s.has_work());
  auto second = s.advance(12);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(s.has_work());
}

TEST(BusScheduler, NextBoundaryTracksState) {
  BusScheduler s(params4());
  EXPECT_FALSE(s.has_work());
  s.submit(50, req(0, 0, 4));
  EXPECT_EQ(s.next_boundary(), 50u);  // idle: earliest submission
  s.advance(50);
  EXPECT_EQ(s.next_boundary(), 56u);  // busy: current grant end
}

TEST(BusScheduler, WaitCyclesAccumulateInTotals) {
  BusScheduler s(params4());
  s.submit(0, req(0, 5, 8));
  s.submit(1, req(1, 1, 4));
  drain(s);
  EXPECT_GT(s.totals().wait_cycles, 0u);
  EXPECT_EQ(s.totals().transfers, 2u);
}

TEST(BusScheduler, GrantTimesRecordEveryGrantStart) {
  BusScheduler s(params4());
  s.set_keep_grant_times(true);
  s.submit(4, req(0, 0, 10));
  drain(s);
  ASSERT_EQ(s.grant_times().size(), 3u);
  EXPECT_EQ(s.grant_times()[0], 4u);
  EXPECT_EQ(s.grant_times()[1], 10u);
  EXPECT_EQ(s.grant_times()[2], 16u);
}

TEST(BusScheduler, ResetClearsEverything) {
  BusScheduler s(params4());
  s.submit(0, req(0, 0, 4));
  s.reset();
  EXPECT_FALSE(s.has_work());
  EXPECT_EQ(s.totals().transfers, 0u);
  s.submit(0, req(0, 0, 4));
  const auto done = drain(s);
  EXPECT_EQ(done[0].result.start, 0u);
}

TEST(BusScheduler, ThreeWayContentionOrdersByPriority) {
  BusScheduler s(params4());
  s.submit(0, req(0, 1, 16));  // long, low priority
  s.submit(1, req(1, 2, 4));
  s.submit(1, req(2, 3, 4));
  const auto done = drain(s);
  ASSERT_EQ(done.size(), 3u);
  // At the first boundary both short jobs pend; priority 3 goes first.
  std::uint64_t start_m2 = 0, start_m1 = 0;
  for (const auto& c : done) {
    if (c.master == 2) start_m2 = c.result.start;
    if (c.master == 1) start_m1 = c.result.start;
  }
  EXPECT_LT(start_m2, start_m1);
}

}  // namespace
}  // namespace socpower::bus
