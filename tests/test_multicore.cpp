// Multicore co-estimation: the N-core scenario family end to end.
//
// Covers the determinism matrix the single-CPU suites pin for the original
// systems — bit-identical results across hw_flush_threads 1 vs 4, serial
// explore() vs explore_sharded(), reaction cache on vs off — plus the
// multicore-only contracts: per-core mapping aborts on an out-of-range
// core, NoC/coherence configs are validated before prepare(), the serve
// daemon hosts multicore sessions (and rejects structurally under-cored
// requests with an error instead of dying), and the ISSUE's acceptance
// criterion that a >= 2-core scenario's separate-estimation error exceeds
// the single-CPU producer/consumer system's.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "dist/wire.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "systems/multicore.hpp"
#include "systems/prodcons.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace socpower {
namespace {

core::RunResults run_multicore(const systems::MulticoreParams& params,
                               core::CoEstimatorConfig cfg_overrides,
                               sim::SimTime horizon = 4096,
                               bool separate = false) {
  systems::MulticoreSystem sys(params);
  core::CoEstimatorConfig cfg = sys.config_template();
  // Per-run knobs ride in via the overrides; structural fields come from
  // the template.
  cfg.accel = cfg_overrides.accel;
  cfg.hw_batch = cfg_overrides.hw_batch;
  cfg.hw_flush_threads = cfg_overrides.hw_flush_threads;
  cfg.hw_reaction_cache = cfg_overrides.hw_reaction_cache;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  return separate ? est.run_separate(sys.stimulus(horizon))
                  : est.run(sys.stimulus(horizon));
}

void expect_bit_identical(const core::RunResults& a,
                          const core::RunResults& b) {
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.cpu_energy, b.cpu_energy);
  EXPECT_EQ(a.hw_energy, b.hw_energy);
  EXPECT_EQ(a.bus_energy, b.bus_energy);
  EXPECT_EQ(a.cache_energy, b.cache_energy);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.reactions, b.reactions);
  EXPECT_EQ(a.iss_instructions, b.iss_instructions);
  EXPECT_EQ(a.bus_totals.transfers, b.bus_totals.transfers);
  EXPECT_EQ(a.bus_totals.energy, b.bus_totals.energy);
  EXPECT_EQ(a.coherence.accesses, b.coherence.accesses);
  EXPECT_EQ(a.coherence.invalidations, b.coherence.invalidations);
  EXPECT_EQ(a.coherence.writebacks, b.coherence.writebacks);
  EXPECT_EQ(a.coherence.energy, b.coherence.energy);
}

TEST(Multicore, RunsAndTouchesEverySubsystem) {
  const core::RunResults res =
      run_multicore({.cores = 4, .num_packets = 4}, {});
  EXPECT_GT(res.total_energy, 0.0);
  EXPECT_GT(res.sw_reactions, 0u);
  EXPECT_GT(res.hw_reactions, 0u);
  EXPECT_GT(res.iss_instructions, 0u);
  // The shared result buffer is written by every worker, so with coherence
  // on the lines ping-pong: real invalidations and real writebacks.
  EXPECT_GT(res.coherence.accesses, 0u);
  EXPECT_GT(res.coherence.invalidations, 0u);
  EXPECT_GT(res.coherence.writebacks, 0u);
  EXPECT_GT(res.coherence.energy, 0.0);
  // Coherence control traffic rides the interconnect.
  EXPECT_GT(res.bus_totals.transfers, 0u);
  EXPECT_GT(res.bus_totals.energy, 0.0);
}

TEST(Multicore, NocInterconnectRunsAndBillsLinkEnergy) {
  const core::RunResults bus = run_multicore(
      {.cores = 4, .num_packets = 4,
       .interconnect = core::InterconnectKind::kBus}, {});
  telemetry::set_enabled(true, false);
  const core::RunResults noc = run_multicore(
      {.cores = 4, .num_packets = 4,
       .interconnect = core::InterconnectKind::kNoc}, {});
  telemetry::set_enabled(false, false);
  EXPECT_GT(noc.bus_totals.transfers, 0u);
  EXPECT_GT(noc.bus_totals.energy, 0.0);
  // Same workload, same coherence protocol — the interconnect swap changes
  // energy/latency, not what traffic exists.
  EXPECT_EQ(noc.coherence.accesses, bus.coherence.accesses);
  EXPECT_NE(noc.bus_totals.energy, bus.bus_totals.energy);
  // Per-link telemetry: at least one "estimator.bus.noc.link.<a>-><b>.flits"
  // counter recorded traffic.
  bool saw_link_counter = false;
  for (const auto& c : telemetry::registry().snapshot().counters)
    if (c.name.rfind("estimator.bus.noc.link.", 0) == 0 && c.value > 0)
      saw_link_counter = true;
  EXPECT_TRUE(saw_link_counter);
}

TEST(Multicore, DeterministicAcrossHwFlushThreads) {
  for (const unsigned cores : {2u, 4u}) {
    SCOPED_TRACE(cores);
    core::CoEstimatorConfig t1, t4;
    t1.hw_batch = t4.hw_batch = true;
    t1.hw_flush_threads = 1;
    t4.hw_flush_threads = 4;
    const core::RunResults a = run_multicore({.cores = cores}, t1);
    const core::RunResults b = run_multicore({.cores = cores}, t4);
    expect_bit_identical(a, b);
  }
}

TEST(Multicore, DeterministicAcrossReactionCacheOnOff) {
  core::CoEstimatorConfig on, off;
  on.hw_reaction_cache = true;
  off.hw_reaction_cache = false;
  const core::RunResults a = run_multicore({.cores = 3}, on);
  const core::RunResults b = run_multicore({.cores = 3}, off);
  expect_bit_identical(a, b);
}

TEST(Multicore, RepeatedRunsBitIdentical) {
  const core::RunResults a = run_multicore({.cores = 2}, {});
  const core::RunResults b = run_multicore({.cores = 2}, {});
  expect_bit_identical(a, b);
}

/// Design points sweeping the core count and interconnect — the multicore
/// family reachable through core::explore / explore_sharded.
std::vector<core::ExplorationPoint> multicore_points() {
  std::vector<core::ExplorationPoint> pts;
  for (const unsigned cores : {1u, 2u, 4u}) {
    for (const core::InterconnectKind ic :
         {core::InterconnectKind::kBus, core::InterconnectKind::kNoc}) {
      auto make_run = [cores, ic](bool exact) {
        return [cores, ic, exact] {
          systems::MulticoreSystem sys(
              {.cores = cores, .num_packets = 3, .interconnect = ic});
          core::CoEstimatorConfig cfg = sys.config_template();
          if (!exact) cfg.accel = core::Acceleration::kCaching;
          core::CoEstimator est(&sys.network(), cfg);
          sys.configure(est);
          est.prepare();
          return est.run(sys.stimulus(4096));
        };
      };
      core::ExplorationPoint p;
      p.label = "cores=" + std::to_string(cores) + "/" +
                core::interconnect_name(ic);
      p.run_coarse = make_run(false);
      p.run_exact = make_run(true);
      pts.push_back(std::move(p));
    }
  }
  return pts;
}

TEST(MulticoreExplore, ShardedMatchesSerial) {
  if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
  const auto pts = multicore_points();
  const core::ExplorationOutcome serial = core::explore(pts, 2);
  const core::ExplorationOutcome sharded =
      core::explore_sharded(pts, 2, {.workers = 3});
  ASSERT_EQ(serial.ranked.size(), sharded.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial.ranked[i].label, sharded.ranked[i].label);
    EXPECT_EQ(serial.ranked[i].coarse_energy, sharded.ranked[i].coarse_energy);
    EXPECT_EQ(serial.ranked[i].exact_energy, sharded.ranked[i].exact_energy);
  }
  EXPECT_EQ(serial.winner_confirmed, sharded.winner_confirmed);
}

TEST(Multicore, SeparateErrorExceedsSingleCpuScenario) {
  // The ISSUE's acceptance criterion: a >= 2-core scenario's
  // separate-estimation error (vs co-estimation) is strictly larger than a
  // single-CPU scenario's. Timing feedback compounds: with N interleaved
  // DONE streams the collector's timing-dependent workload drifts further
  // when interconnect/coherence stalls are ignored.
  auto rel_error = [](const core::RunResults& co,
                      const core::RunResults& sep) {
    return std::fabs(sep.total_energy - co.total_energy) / co.total_energy;
  };
  systems::ProdConsSystem pc({.num_packets = 6});
  core::CoEstimatorConfig pc_cfg;
  double single_err = 0.0;
  {
    core::CoEstimator est(&pc.network(), pc_cfg);
    pc.configure(est);
    est.prepare();
    const core::RunResults co = est.run(pc.stimulus(8192));
    const core::RunResults sep = est.run_separate(pc.stimulus(8192));
    single_err = rel_error(co, sep);
  }
  const systems::MulticoreParams mp{.cores = 4, .num_packets = 6};
  const core::RunResults co = run_multicore(mp, {}, 8192, false);
  const core::RunResults sep = run_multicore(mp, {}, 8192, true);
  const double multi_err = rel_error(co, sep);
  EXPECT_GT(multi_err, single_err)
      << "multicore separate error " << multi_err
      << " should exceed single-CPU " << single_err;
}

using MulticoreDeathTest = ::testing::Test;

TEST(MulticoreDeathTest, MapSwAbortsOnOutOfRangeCore) {
  systems::MulticoreSystem sys({.cores = 2});
  core::CoEstimatorConfig cfg = sys.config_template();
  core::CoEstimator est(&sys.network(), cfg);
  EXPECT_DEATH(est.map_sw(sys.workers()[0], /*core=*/2, /*rtos_priority=*/1),
               "out of range");
}

TEST(MulticoreDeathTest, PrepareAbortsOnNonPositiveNocLinkCap) {
  systems::MulticoreSystem sys(
      {.cores = 2, .interconnect = core::InterconnectKind::kNoc});
  core::CoEstimatorConfig cfg = sys.config_template();
  cfg.noc.link_cap_f = 0.0;
  EXPECT_FALSE(cfg.validate().empty());
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  EXPECT_DEATH(est.prepare(), "link_cap_f");
}

TEST(MulticoreDeathTest, PrepareAbortsOnZeroCores) {
  systems::MulticoreSystem sys({.cores = 1});
  core::CoEstimatorConfig cfg = sys.config_template();
  cfg.cores = 0;
  EXPECT_FALSE(cfg.validate().empty());
  core::CoEstimator est(&sys.network(), cfg);
  EXPECT_DEATH(est.prepare(), "cores");
}

class MulticoreServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
    serve::ServerConfig cfg;
    cfg.socket_path = ::testing::TempDir() + "socpower_multicore_" +
                      std::to_string(::getpid()) + ".sock";
    cfg.threads = 2;
    server_ = std::make_unique<serve::Server>(cfg);
    ASSERT_TRUE(server_->start());
  }
  void TearDown() override {
    if (server_) server_->stop();
  }
  std::unique_ptr<serve::Server> server_;
};

TEST_F(MulticoreServeTest, MulticoreSessionMatchesInProcessRun) {
  std::string error;
  serve::Client client =
      serve::Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(client.valid()) << error;

  const systems::MulticoreParams mp{.cores = 3, .num_packets = 4};
  systems::MulticoreSystem ref_sys(mp);
  core::CoEstimator ref(&ref_sys.network(), ref_sys.config_template());
  ref_sys.configure(ref);
  ref.prepare();
  const core::RunResults want = ref.run(ref_sys.stimulus(4096));

  serve::SystemParams sp;
  sp.name = "multicore";
  sp.set("cores", 3);
  sp.set("num_packets", 4);
  sp.set("horizon", 4096);
  const serve::StructuralConfig structural =
      serve::StructuralConfig::from(ref_sys.config_template());
  std::string key;
  ASSERT_TRUE(client.open_session(sp, structural, &key, nullptr, &error))
      << error;
  core::RunResults got;
  ASSERT_TRUE(client.estimate(key, serve::RunRequest{}, &got, nullptr,
                              &error))
      << error;
  expect_bit_identical(want, got);
}

TEST_F(MulticoreServeTest, UnderCoredStructuralConfigIsRejectedNotFatal) {
  std::string error;
  serve::Client client =
      serve::Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(client.valid()) << error;

  serve::SystemParams sp;
  sp.name = "multicore";
  sp.set("cores", 4);
  // Default structural config has cores = 1: the 4-worker system cannot map
  // onto it. map_sw would abort the process — the server must refuse first.
  EXPECT_FALSE(client.open_session(sp, serve::StructuralConfig{}, nullptr,
                                   nullptr, &error));
  EXPECT_NE(error.find("at least 4 cores"), std::string::npos) << error;
  // The server survived; a well-formed request still works.
  systems::MulticoreSystem sys({.cores = 4});
  const serve::StructuralConfig good =
      serve::StructuralConfig::from(sys.config_template());
  std::string key;
  EXPECT_TRUE(client.open_session(sp, good, &key, nullptr, &error)) << error;
}

}  // namespace
}  // namespace socpower
