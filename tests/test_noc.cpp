// Unit tests for the two multicore building blocks: the XY-routed mesh
// interconnect (bus::NocModel) and the directory-MSI coherent memory model
// (cache::CoherentMemoryModel). Both are exercised standalone here — the
// integrated behavior (through the co-simulation master) lives in
// test_multicore.cpp.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "bus/noc_model.hpp"
#include "cache/coherence.hpp"
#include "dist/wire.hpp"

namespace socpower {
namespace {

using bus::BusRequest;
using bus::NocModel;
using bus::NocParams;
using cache::CoherenceConfig;
using cache::CoherentMemoryModel;

// ---- NoC routing ----------------------------------------------------------

TEST(Noc, XyRoutingGoesXFirstThenY) {
  // 3x3 mesh, node ids row-major:  0 1 2 / 3 4 5 / 6 7 8.
  NocModel noc({.mesh_cols = 3, .mesh_rows = 3});
  // 0 -> 8: X to column 2 (0->1->2), then Y down (2->5->8).
  const std::vector<std::pair<unsigned, unsigned>> want = {
      {0, 1}, {1, 2}, {2, 5}, {5, 8}};
  EXPECT_EQ(noc.route(0, 8), want);
  // 7 -> 3: X left (7->6), then Y up (6->3).
  const std::vector<std::pair<unsigned, unsigned>> want2 = {{7, 6}, {6, 3}};
  EXPECT_EQ(noc.route(7, 3), want2);
  // Self-route is empty.
  EXPECT_TRUE(noc.route(4, 4).empty());
}

TEST(Noc, MastersMapModuloNodesAndMemoryDefaultsToLastNode) {
  NocParams p{.mesh_cols = 2, .mesh_rows = 2};
  EXPECT_EQ(p.resolved_memory_node(), 3u);
  NocModel noc(p);
  EXPECT_EQ(noc.master_node(0), 0u);
  EXPECT_EQ(noc.master_node(5), 1u);  // 5 % 4
  p.memory_node = 2;
  EXPECT_EQ(p.resolved_memory_node(), 2u);
}

TEST(Noc, TransferBillsEnergyOnEveryTraversedLink) {
  NocModel noc({.mesh_cols = 2, .mesh_rows = 2});
  // Master 0 (node 0) writes to memory (node 3): route 0->1->3, 2 links.
  const auto id = noc.submit(0, BusRequest{.master = 0,
                                           .priority = 0,
                                           .write = true,
                                           .addr = 0x100,
                                           .data = {0xff, 0x00, 0xff, 0x00}});
  EXPECT_GT(id, 0u);
  ASSERT_TRUE(noc.has_work());
  const auto done = noc.advance(noc.next_boundary());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].master, 0);
  EXPECT_GT(done[0].result.energy, 0.0);

  unsigned active_links = 0;
  for (const NocModel::LinkStats& l : noc.links()) {
    if (l.packets == 0) continue;
    ++active_links;
    EXPECT_GT(l.flits, 0u);
    EXPECT_GT(l.energy, 0.0);
    EXPECT_FALSE(NocModel::link_name(l).empty());
  }
  EXPECT_EQ(active_links, 2u);
  EXPECT_EQ(noc.totals().transfers, 1u);
  EXPECT_GT(noc.totals().energy, 0.0);
}

TEST(Noc, ReadBillsTheReplyPathToo) {
  // Same route, one write vs one read of the same payload size: the read
  // additionally carries the reply packet back, so it touches more links.
  auto run = [](bool write) {
    NocModel noc({.mesh_cols = 2, .mesh_rows = 2});
    BusRequest rq{.master = 0, .priority = 0, .write = write, .addr = 0x40};
    rq.data.assign(8, 0xaa);
    (void)noc.submit(0, rq);
    (void)noc.advance(noc.next_boundary());
    std::uint64_t flits = 0;
    for (const NocModel::LinkStats& l : noc.links()) flits += l.flits;
    return flits;
  };
  EXPECT_GT(run(/*write=*/false), run(/*write=*/true));
}

TEST(Noc, SharedLinkContentionSerializesPackets) {
  // Masters 0 (node 0) and 1 (node 1) both target memory at node 3; both
  // routes share the link 1->3. Submitted at the same instant, one packet
  // must queue behind the other — strictly later completion.
  NocModel noc({.mesh_cols = 2, .mesh_rows = 2});
  BusRequest a{.master = 0, .priority = 0, .write = true, .addr = 0x0};
  BusRequest b{.master = 1, .priority = 0, .write = true, .addr = 0x0};
  a.data.assign(16, 0x55);
  b.data.assign(16, 0x55);
  (void)noc.submit(0, a);
  (void)noc.submit(0, b);
  std::vector<std::uint64_t> done_at;
  while (noc.has_work()) {
    const std::uint64_t t = noc.next_boundary();
    for (const auto& c : noc.advance(t)) {
      done_at.push_back(t);
      EXPECT_GE(c.result.wait_cycles + 1, 0u);
    }
  }
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_NE(done_at[0], done_at[1]);
  std::uint64_t waits = noc.totals().wait_cycles;
  EXPECT_GT(waits, 0u);
}

TEST(Noc, ResetClearsRunStateAndTotals) {
  NocModel noc({.mesh_cols = 2, .mesh_rows = 2});
  BusRequest rq{.master = 0, .priority = 0, .write = true, .addr = 0x10};
  rq.data.assign(4, 0x0f);
  (void)noc.submit(0, rq);
  (void)noc.advance(noc.next_boundary());
  ASSERT_GT(noc.totals().transfers, 0u);
  noc.reset();
  EXPECT_EQ(noc.totals().transfers, 0u);
  EXPECT_EQ(noc.totals().energy, 0.0);
  for (const NocModel::LinkStats& l : noc.links())
    EXPECT_EQ(l.packets, 0u);
  EXPECT_FALSE(noc.has_work());
}

TEST(Noc, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    NocModel noc({.mesh_cols = 3, .mesh_rows = 2});
    for (int m = 0; m < 4; ++m) {
      BusRequest rq{.master = m, .priority = 0, .write = (m % 2) == 0,
                    .addr = static_cast<std::uint32_t>(0x100 * m)};
      rq.data.assign(8 + m, static_cast<std::uint8_t>(0x11 * m));
      (void)noc.submit(static_cast<std::uint64_t>(m), rq);
    }
    while (noc.has_work()) (void)noc.advance(noc.next_boundary());
    return noc.totals();
  };
  const bus::BusTotals a = run();
  const bus::BusTotals b = run();
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.data_toggles, b.data_toggles);
  EXPECT_EQ(a.wait_cycles, b.wait_cycles);
  EXPECT_EQ(a.energy, b.energy);
}

// ---- MSI coherence --------------------------------------------------------

CoherenceConfig small_l1() {
  CoherenceConfig cfg;
  cfg.enabled = true;
  cfg.l1.size_bytes = 256;
  cfg.l1.line_bytes = 16;
  cfg.l1.associativity = 2;
  return cfg;
}

TEST(Coherence, ReadMissThenHitAndSharedState) {
  CoherentMemoryModel mem(small_l1(), 2);
  const auto miss = mem.access(0, /*write=*/false, 0x1000, 4);
  EXPECT_GT(miss.penalty_cycles, 0u);
  EXPECT_TRUE(miss.traffic.empty());  // clean read: no control messages
  const auto hit = mem.access(0, false, 0x1004, 4);  // same line
  EXPECT_EQ(hit.penalty_cycles, 0u);
  EXPECT_EQ(mem.state(0, 0x1000), CoherentMemoryModel::LineState::kShared);
  EXPECT_EQ(mem.state(1, 0x1000), CoherentMemoryModel::LineState::kInvalid);
  EXPECT_EQ(mem.totals().accesses, 2u);
  EXPECT_EQ(mem.totals().l1_hits, 1u);
  EXPECT_EQ(mem.totals().l1_misses, 1u);
}

TEST(Coherence, WriteInvalidatesRemoteSharers) {
  CoherentMemoryModel mem(small_l1(), 3);
  (void)mem.access(0, false, 0x2000, 4);
  (void)mem.access(1, false, 0x2000, 4);
  ASSERT_EQ(mem.state(1, 0x2000), CoherentMemoryModel::LineState::kShared);
  // Core 2 writes: both remote Shared copies drop, writer goes Modified.
  const auto w = mem.access(2, /*write=*/true, 0x2000, 4);
  EXPECT_EQ(w.invalidations, 2u);
  EXPECT_FALSE(w.traffic.empty());
  EXPECT_EQ(mem.state(0, 0x2000), CoherentMemoryModel::LineState::kInvalid);
  EXPECT_EQ(mem.state(1, 0x2000), CoherentMemoryModel::LineState::kInvalid);
  EXPECT_EQ(mem.state(2, 0x2000), CoherentMemoryModel::LineState::kModified);
  EXPECT_EQ(mem.totals().invalidations, 2u);
}

TEST(Coherence, UpgradeOnWriteHitToSharedLine) {
  CoherentMemoryModel mem(small_l1(), 2);
  (void)mem.access(0, false, 0x3000, 4);
  (void)mem.access(1, false, 0x3000, 4);
  const auto up = mem.access(0, /*write=*/true, 0x3000, 4);
  EXPECT_EQ(up.invalidations, 1u);
  EXPECT_EQ(mem.state(0, 0x3000), CoherentMemoryModel::LineState::kModified);
  EXPECT_EQ(mem.totals().upgrades, 1u);
}

TEST(Coherence, DirtyFetchForcesWritebackAndStall) {
  CoherenceConfig cfg = small_l1();
  CoherentMemoryModel mem(cfg, 2);
  (void)mem.access(0, /*write=*/true, 0x4000, 4);  // core 0 owns Modified
  const auto rd = mem.access(1, /*write=*/false, 0x4000, 4);
  EXPECT_EQ(rd.writebacks, 1u);
  // Miss penalty plus the dirty-fetch stall.
  EXPECT_GE(rd.penalty_cycles,
            cfg.l1.miss_penalty_cycles + cfg.dirty_fetch_cycles);
  // Owner downgraded; both end up Shared.
  EXPECT_EQ(mem.state(0, 0x4000), CoherentMemoryModel::LineState::kShared);
  EXPECT_EQ(mem.state(1, 0x4000), CoherentMemoryModel::LineState::kShared);
  // The writeback message carries the line's bytes at the line address.
  bool saw_writeback = false;
  for (const BusRequest& rq : rd.traffic)
    if (rq.write && rq.addr == 0x4000 &&
        rq.data.size() == cfg.l1.line_bytes)
      saw_writeback = true;
  EXPECT_TRUE(saw_writeback);
  EXPECT_EQ(mem.totals().writebacks, 1u);
}

TEST(Coherence, UncachedAgentInteractsWithDirectory) {
  CoherentMemoryModel mem(small_l1(), 2);
  (void)mem.access(0, /*write=*/true, 0x5000, 4);
  // A DMA-style agent (core < 0) reading the line flushes the dirty owner.
  const auto rd = mem.access(-1, /*write=*/false, 0x5000, 16);
  EXPECT_EQ(rd.writebacks, 1u);
  // And a device write invalidates every cached copy.
  const auto wr = mem.access(-1, /*write=*/true, 0x5000, 16);
  EXPECT_GE(wr.invalidations, 1u);
  EXPECT_EQ(mem.state(0, 0x5000), CoherentMemoryModel::LineState::kInvalid);
}

TEST(Coherence, LineCrossingAccessRunsProtocolPerLine) {
  CoherentMemoryModel mem(small_l1(), 1);
  // 32 bytes starting mid-line touch 3 lines of 16 bytes.
  (void)mem.access(0, false, 0x1008, 32);
  EXPECT_EQ(mem.totals().l1_misses, 3u);
}

TEST(Coherence, EvictionOfModifiedLineWritesBack) {
  CoherenceConfig cfg = small_l1();
  cfg.l1.size_bytes = 32;  // 1 set x 2 ways of 16B: tiny, easy to thrash
  CoherentMemoryModel mem(cfg, 1);
  (void)mem.access(0, true, 0x0000, 4);
  (void)mem.access(0, true, 0x1000, 4);
  const auto evict = mem.access(0, true, 0x2000, 4);  // LRU victim is dirty
  EXPECT_EQ(evict.writebacks, 1u);
  EXPECT_EQ(mem.totals().writebacks, 1u);
}

TEST(Coherence, TrafficBillsUnderConfiguredMasterAndPriority) {
  CoherenceConfig cfg = small_l1();
  cfg.traffic_master = 42;
  cfg.traffic_priority = 5;
  CoherentMemoryModel mem(cfg, 2);
  (void)mem.access(0, true, 0x6000, 4);
  const auto rd = mem.access(1, false, 0x6000, 4);
  ASSERT_FALSE(rd.traffic.empty());
  for (const BusRequest& rq : rd.traffic) {
    EXPECT_EQ(rq.master, 42);
    EXPECT_EQ(rq.priority, 5);
  }
}

// ---- wire codec -----------------------------------------------------------

TEST(Coherence, TotalsRoundTripThroughRunResultsWire) {
  core::RunResults res;
  res.total_energy = 1.25e-6;
  res.coherence.accesses = 7;
  res.coherence.l1_hits = 4;
  res.coherence.l1_misses = 3;
  res.coherence.upgrades = 2;
  res.coherence.invalidations = 5;
  res.coherence.writebacks = 1;
  res.coherence.energy = 3.5e-9;
  dist::WireWriter w;
  dist::put_run_results(w, res);
  dist::WireReader r(w.bytes());
  core::RunResults got;
  ASSERT_TRUE(dist::get_run_results(r, &got));
  EXPECT_EQ(got.coherence.accesses, 7u);
  EXPECT_EQ(got.coherence.l1_hits, 4u);
  EXPECT_EQ(got.coherence.l1_misses, 3u);
  EXPECT_EQ(got.coherence.upgrades, 2u);
  EXPECT_EQ(got.coherence.invalidations, 5u);
  EXPECT_EQ(got.coherence.writebacks, 1u);
  EXPECT_EQ(got.coherence.energy, 3.5e-9);
}

}  // namespace
}  // namespace socpower
