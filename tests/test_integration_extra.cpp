// Additional integration and edge-case coverage: separate-estimation
// semantics, odd workload shapes, SW image layout invariants, randomized
// event-queue ordering, and cross-feature combinations.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/coestimator.hpp"
#include "core/report.hpp"
#include "swsyn/codegen.hpp"
#include "systems/dashboard.hpp"
#include "systems/prodcons.hpp"
#include "systems/tcpip.hpp"
#include "util/rng.hpp"

namespace socpower {
namespace {

TEST(SeparateEstimation, IgnoresSharedResourceEffects) {
  // Separate per-component estimation has no notion of the shared bus or
  // cache (each estimator sees only its own trace) — that blindness is the
  // paper's Section 2 argument.
  systems::TcpIpSystem sys({.num_packets = 3, .packet_bytes = 32});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto sep = est.run_separate(sys.stimulus());
  EXPECT_DOUBLE_EQ(sep.bus_energy, 0.0);
  EXPECT_DOUBLE_EQ(sep.cache_energy, 0.0);
  EXPECT_GT(sep.cpu_energy, 0.0);
  EXPECT_GT(sep.hw_energy, 0.0);
}

TEST(SeparateEstimation, IsDeterministic) {
  systems::ProdConsSystem sys({.num_packets = 5, .bytes_per_packet = 8});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto a = est.run_separate(sys.stimulus(20000));
  const auto b = est.run_separate(sys.stimulus(20000));
  EXPECT_EQ(a.process_energy, b.process_energy);
  EXPECT_EQ(a.iss_instructions, b.iss_instructions);
}

TEST(SeparateEstimation, InterleavesWithCoEstimationRuns) {
  // run() and run_separate() share one estimator; alternating them must not
  // leak state between modes.
  systems::TcpIpSystem sys({.num_packets = 2, .packet_bytes = 16});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto co1 = est.run(sys.stimulus());
  const auto sep1 = est.run_separate(sys.stimulus());
  const auto co2 = est.run(sys.stimulus());
  const auto sep2 = est.run_separate(sys.stimulus());
  EXPECT_DOUBLE_EQ(co1.total_energy, co2.total_energy);
  EXPECT_DOUBLE_EQ(sep1.total_energy, sep2.total_energy);
}

TEST(TcpIpEdge, DmaLargerThanPacket) {
  systems::TcpIpSystem sys(
      {.num_packets = 2, .packet_bytes = 16, .dma_block_size = 128});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(sys.packets_ok(est), 2);
}

TEST(TcpIpEdge, OddPacketSizesAndNonPowerOfTwoDma) {
  // Odd packet length (tail byte zero-padded into its word) with a
  // non-power-of-two — but word-aligned — DMA block size.
  systems::TcpIpSystem sys(
      {.num_packets = 3, .packet_bytes = 29, .dma_block_size = 6, .seed = 4});
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  est.run(sys.stimulus());
  EXPECT_EQ(sys.packets_ok(est), 3);
  EXPECT_EQ(sys.packets_bad(est), 0);
}

TEST(TcpIpEdge, SingleBytePackets) {
  systems::TcpIpSystem sys(
      {.num_packets = 4, .packet_bytes = 1, .dma_block_size = 16});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  est.run(sys.stimulus());
  EXPECT_EQ(sys.packets_ok(est), 4);
}

TEST(TcpIpEdge, HwIpCheckMappingIsFunctionallyEquivalent) {
  for (const bool hw : {false, true}) {
    systems::TcpIpParams p;
    p.num_packets = 4;
    p.packet_bytes = 48;
    p.ip_check_in_hw = hw;
    systems::TcpIpSystem sys(p);
    core::CoEstimator est(&sys.network(), {});
    sys.configure(est);
    est.prepare();
    est.run(sys.stimulus());
    EXPECT_EQ(sys.packets_ok(est), 4) << (hw ? "HW" : "SW");
  }
}

TEST(ProdConsEdge, NoTimerTicksStillProcessesBaseIterations) {
  // Without TIME updates, the consumer still runs its base per-packet work:
  // the timing-dependent term is zero, not the whole loop.
  systems::ProdConsParams p;
  p.num_packets = 2;
  p.bytes_per_packet = 4;
  p.consumer_base_iterations = 5;
  systems::ProdConsSystem sys(p);
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  sim::Stimulus stim;  // STARTs only, no TIMER_TICKs
  stim.add(1, sys.network().event_id("START"));
  stim.add(3, sys.network().event_id("START"));
  std::uint64_t byte_dones = 0;
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == sys.byte_done_event()) ++byte_dones;
      });
  const auto r = est.run(stim);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(byte_dones, 2u * 5u);
}

TEST(MacroModelIntegration, ParameterFileDrivesIdenticalEstimates) {
  // The characterized library serializes to the Figure 3 format and, once
  // reloaded, must reproduce the co-estimator's macro-model energies.
  systems::TcpIpSystem sys({.num_packets = 3, .packet_bytes = 32});
  core::CoEstimatorConfig cfg;
  cfg.accel = core::Acceleration::kMacroModel;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());

  std::string error;
  const auto reloaded = core::MacroModelLibrary::from_parameter_file(
      est.macromodel().to_parameter_file(), &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  // Spot-check a stream estimate end to end.
  const std::vector<swsyn::MacroOp> stream = {
      swsyn::MacroOp::kRVar, swsyn::MacroOp::kConst, swsyn::MacroOp::kAdd,
      swsyn::MacroOp::kAvv, swsyn::MacroOp::kAemit, swsyn::MacroOp::kTend};
  EXPECT_NEAR(reloaded->estimate(stream).energy,
              est.macromodel().estimate(stream).energy,
              est.macromodel().estimate(stream).energy * 1e-4);
  EXPECT_GT(r.total_energy, 0.0);
}

TEST(SwImageLayout, OffsetsAreOrderedAndCovered) {
  systems::TcpIpSystem sys({.num_packets = 1});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const swsyn::SwImage* img = est.sw_image(sys.create_pack());
  ASSERT_NE(img, nullptr);
  EXPECT_LT(0u, img->in_flag_off);
  EXPECT_LT(img->in_flag_off, img->in_val_off);
  EXPECT_LT(img->in_val_off, img->var_off);
  EXPECT_LT(img->var_off, img->tmp_off);
  EXPECT_LE(img->tmp_off, img->data_bytes);
  EXPECT_GT(img->code.size(), 0u);
  EXPECT_EQ(img->code_bytes(), img->code.size() * iss::kInstrBytes);
  // Every declared input has a local slot; unknown events do not.
  for (const auto e : sys.network().cfsm(sys.create_pack()).inputs())
    EXPECT_GE(img->local_input_index(e), 0);
  EXPECT_EQ(img->local_input_index(9999), -1);
  // HW units have no SW image and vice versa.
  EXPECT_EQ(est.sw_image(sys.checksum()), nullptr);
  EXPECT_EQ(est.hw_image(sys.create_pack()), nullptr);
  EXPECT_NE(est.hw_image(sys.checksum()), nullptr);
}

TEST(EventQueueProperty, RandomPostingsPopInNondecreasingTime) {
  Rng rng(31);
  sim::EventQueue q;
  for (int i = 0; i < 500; ++i)
    q.post(rng.below(100), static_cast<cfsm::EventId>(rng.below(5)), 0);
  sim::SimTime last = 0;
  std::size_t popped = 0;
  while (!q.empty()) {
    const auto instant = q.pop_instant();
    ASSERT_FALSE(instant.empty());
    EXPECT_GE(instant.front().time, last);
    // All occurrences in an instant share one timestamp.
    for (const auto& o : instant) EXPECT_EQ(o.time, instant.front().time);
    last = instant.front().time;
    popped += instant.size();
  }
  EXPECT_EQ(popped, 500u);
}

TEST(DashboardPartitions, AllEightPartitionsRunGreen) {
  for (unsigned mask = 0; mask < 8; ++mask) {
    systems::DashboardSystem sys({.frames = 8});
    core::CoEstimatorConfig cfg;
    cfg.verify_lowlevel = true;
    core::CoEstimator est(&sys.network(), cfg);
    sys.configure(est, {.speedo_hw = (mask & 1) != 0,
                        .odometer_hw = (mask & 2) != 0,
                        .cruise_hw = (mask & 4) != 0});
    est.prepare();
    const auto r = est.run(sys.stimulus());
    EXPECT_FALSE(r.truncated) << "mask=" << mask;
    EXPECT_GT(r.total_energy, 0.0) << "mask=" << mask;
  }
}

TEST(RtlEstimatorIntegration, BatchAndOnlineAgree) {
  systems::TcpIpParams p;
  p.num_packets = 3;
  p.packet_bytes = 32;
  p.checksum_rtl_estimator = true;
  systems::TcpIpSystem sys(p);
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  est.config().hw_batch = true;
  const auto batch = est.run(sys.stimulus());
  est.config().hw_batch = false;
  const auto online = est.run(sys.stimulus());
  EXPECT_NEAR(batch.hw_energy, online.hw_energy, batch.hw_energy * 1e-9);
}

}  // namespace
}  // namespace socpower
