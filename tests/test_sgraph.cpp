// S-graph tests: construction/validation, execution semantics (sequential
// assignment visibility, branch direction, emissions), path enumeration and
// interning.
#include <gtest/gtest.h>

#include "cfsm/cfsm.hpp"
#include "cfsm/sgraph.hpp"

namespace socpower::cfsm {
namespace {

/// Minimal harness: a Cfsm gives us an arena + graph + state in one place.
struct Fixture {
  Network net;
  Cfsm& c;
  EventId in_e;
  EventId out_e;

  Fixture()
      : c(net.add_cfsm("t")), in_e(net.declare_event("IN")),
        out_e(net.declare_event("OUT")) {
    c.add_input(in_e);
    c.add_output(out_e);
  }
};

TEST(SGraph, ValidateRejectsMissingRoot) {
  ExprArena a;
  SGraph g(&a);
  EXPECT_NE(g.validate(), "");
}

TEST(SGraph, ValidateRejectsUndefinedReservedNode) {
  ExprArena a;
  SGraph g(&a);
  const NodeId r = g.reserve();
  g.set_root(r);
  EXPECT_NE(g.validate(), "");
  g.define_end(r);
  EXPECT_EQ(g.validate(), "");
}

TEST(SGraph, ValidateDetectsCycle) {
  ExprArena a;
  SGraph g(&a);
  const NodeId n1 = g.reserve();
  const NodeId n2 = g.reserve();
  g.define_assign(n1, 0, a.constant(1), n2);
  g.define_assign(n2, 0, a.constant(2), n1);  // back edge
  g.set_root(n1);
  EXPECT_NE(g.validate().find("cycle"), std::string::npos);
}

TEST(SGraph, SequentialAssignmentVisibility) {
  // v0 := 5; v0 := v0 + 1; the second read must see 5.
  Fixture f;
  auto& g = f.c.graph();
  auto& a = f.c.arena();
  const VarId v = f.c.add_var("v");
  const NodeId end = g.add_end();
  const NodeId n2 = g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.constant(1)), end);
  const NodeId n1 = g.add_assign(v, a.constant(5), n2);
  g.set_root(n1);
  ASSERT_EQ(g.validate(), "");

  CfsmState st = f.c.make_state();
  ReactionInputs in;
  in.set(f.in_e, 0);
  const Reaction r = f.c.react(in, st);
  EXPECT_EQ(st.vars[0], 6);
  EXPECT_EQ(r.trace.size(), 3u);
}

TEST(SGraph, TestBranchDirections) {
  Fixture f;
  auto& g = f.c.graph();
  auto& a = f.c.arena();
  const VarId v = f.c.add_var("v");
  const NodeId end = g.add_end();
  const NodeId then_n = g.add_assign(v, a.constant(1), end);
  const NodeId else_n = g.add_assign(v, a.constant(2), end);
  g.set_root(g.add_test(a.event_value(f.in_e), then_n, else_n));
  ASSERT_EQ(g.validate(), "");

  CfsmState st = f.c.make_state();
  ReactionInputs in;
  in.set(f.in_e, 7);  // nonzero -> then
  f.c.react(in, st);
  EXPECT_EQ(st.vars[0], 1);
  in.clear();
  in.set(f.in_e, 0);  // zero -> else
  f.c.react(in, st);
  EXPECT_EQ(st.vars[0], 2);
}

TEST(SGraph, EmissionCarriesEvaluatedValue) {
  Fixture f;
  auto& g = f.c.graph();
  auto& a = f.c.arena();
  const NodeId end = g.add_end();
  g.set_root(g.add_emit(
      f.out_e, a.binary(ExprOp::kMul, a.event_value(f.in_e), a.constant(3)),
      end));
  CfsmState st = f.c.make_state();
  ReactionInputs in;
  in.set(f.in_e, 14);
  const Reaction r = f.c.react(in, st);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].event, f.out_e);
  EXPECT_EQ(r.emissions[0].value, 42);
}

TEST(SGraph, EmitWithoutValueYieldsZero) {
  Fixture f;
  auto& g = f.c.graph();
  g.set_root(g.add_emit(f.out_e, kNoExpr, g.add_end()));
  CfsmState st = f.c.make_state();
  ReactionInputs in;
  in.set(f.in_e, 1);
  const Reaction r = f.c.react(in, st);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].value, 0);
}

TEST(SGraph, EnumeratePathsCountsBranchCombinations) {
  Fixture f;
  auto& g = f.c.graph();
  auto& a = f.c.arena();
  const VarId v = f.c.add_var("v");
  // Two independent tests in sequence -> 4 paths.
  const NodeId end = g.add_end();
  const NodeId t2a = g.add_assign(v, a.constant(1), end);
  const NodeId t2b = g.add_assign(v, a.constant(2), end);
  const NodeId t2 = g.add_test(a.variable(v), t2a, t2b);
  const NodeId t1a = g.add_assign(v, a.constant(3), t2);
  const NodeId t1b = g.add_assign(v, a.constant(4), t2);
  g.set_root(g.add_test(a.event_value(f.in_e), t1a, t1b));
  ASSERT_EQ(g.validate(), "");
  EXPECT_EQ(g.enumerate_paths().size(), 4u);
}

TEST(SGraph, EnumeratePathsRespectsCap) {
  Fixture f;
  auto& g = f.c.graph();
  auto& a = f.c.arena();
  const VarId v = f.c.add_var("v");
  // Chain of 8 tests -> 256 paths; cap at 10.
  NodeId next = g.add_end();
  for (int i = 0; i < 8; ++i) {
    const NodeId t = g.add_assign(v, a.constant(i), next);
    const NodeId e = g.add_assign(v, a.constant(-i), next);
    next = g.add_test(a.variable(v), t, e);
  }
  g.set_root(next);
  EXPECT_EQ(g.enumerate_paths(10).size(), 10u);
}

TEST(SGraph, DagSharingExecutesSharedTailOnce) {
  Fixture f;
  auto& g = f.c.graph();
  auto& a = f.c.arena();
  const VarId v = f.c.add_var("v");
  const NodeId end = g.add_end();
  const NodeId shared = g.add_assign(
      v, a.binary(ExprOp::kAdd, a.variable(v), a.constant(100)), end);
  const NodeId t = g.add_assign(v, a.constant(1), shared);
  const NodeId e = g.add_assign(v, a.constant(2), shared);
  g.set_root(g.add_test(a.event_value(f.in_e), t, e));
  CfsmState st = f.c.make_state();
  ReactionInputs in;
  in.set(f.in_e, 1);
  f.c.react(in, st);
  EXPECT_EQ(st.vars[0], 101);
}

TEST(PathTable, InternsDistinctTracesDistinctly) {
  PathTable pt;
  EXPECT_EQ(pt.intern({0, 1, 2}), 0);
  EXPECT_EQ(pt.intern({0, 1, 3}), 1);
  EXPECT_EQ(pt.intern({0, 1, 2}), 0);  // same trace, same id
  EXPECT_EQ(pt.size(), 2u);
  EXPECT_EQ(pt.path(1), (std::vector<NodeId>{0, 1, 3}));
}

TEST(PathTable, PrefixIsNotConfusedWithLonger) {
  PathTable pt;
  const PathId a = pt.intern({1, 2});
  const PathId b = pt.intern({1, 2, 3});
  EXPECT_NE(a, b);
}

TEST(Cfsm, ResetReinitializesVariablesAndSkipsGraph) {
  Network net;
  const EventId trig = net.declare_event("T");
  const EventId rst = net.declare_event("RST");
  Cfsm& c = net.add_cfsm("p");
  c.add_input(trig);
  c.set_reset_event(rst);
  const VarId v = c.add_var("v", 11);
  auto& g = c.graph();
  g.set_root(g.add_assign(v, c.arena().constant(99), g.add_end()));

  CfsmState st = c.make_state();
  EXPECT_EQ(st.vars[0], 11);
  ReactionInputs in;
  in.set(trig, 0);
  c.react(in, st);
  EXPECT_EQ(st.vars[0], 99);
  in.clear();
  in.set(rst, 0);
  const Reaction r = c.react(in, st);
  EXPECT_EQ(st.vars[0], 11);      // back to init
  EXPECT_TRUE(r.trace.empty());   // reset consumes the instant
  EXPECT_TRUE(r.emissions.empty());
}

TEST(Network, ReceiversAndSamplers) {
  Network net;
  const EventId e1 = net.declare_event("E1");
  const EventId e2 = net.declare_event("E2");
  Cfsm& a = net.add_cfsm("a");
  a.add_input(e1);
  Cfsm& b = net.add_cfsm("b");
  b.add_sampled_input(e1);
  b.add_input(e2);
  EXPECT_EQ(net.receivers(e1), std::vector<CfsmId>{a.id()});
  EXPECT_EQ(net.samplers(e1), std::vector<CfsmId>{b.id()});
  EXPECT_EQ(net.receivers(e2), std::vector<CfsmId>{b.id()});
  EXPECT_TRUE(b.listens_to(e1));
  EXPECT_FALSE(b.triggers_on(e1));
  EXPECT_TRUE(b.triggers_on(e2));
}

TEST(Network, EventLookupByName) {
  Network net;
  const EventId e = net.declare_event("FOO");
  EXPECT_EQ(net.event_id("FOO"), e);
  EXPECT_EQ(net.event_id("BAR"), -1);
  EXPECT_EQ(net.event_name(e), "FOO");
}

TEST(ReactionInputs, LatestValueWinsWithinInstant) {
  ReactionInputs in;
  in.set(5, 10);
  in.set(5, 20);
  EXPECT_EQ(in.value(5), 20);
  EXPECT_EQ(in.all().size(), 1u);
}

}  // namespace
}  // namespace socpower::cfsm
