// Expression IR tests: evaluation semantics of every operator (parameterized
// sweep), arena construction, flattening order, and the shared
// apply_expr_op() reference semantics.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cfsm/expr.hpp"

namespace socpower::cfsm {
namespace {

class MapContext final : public EvalContext {
 public:
  std::vector<std::int32_t> vars;
  std::vector<std::pair<EventId, std::int32_t>> events;

  [[nodiscard]] std::int32_t var(VarId v) const override {
    return vars.at(static_cast<std::size_t>(v));
  }
  [[nodiscard]] bool event_present(EventId e) const override {
    for (const auto& [ev, _] : events)
      if (ev == e) return true;
    return false;
  }
  [[nodiscard]] std::int32_t event_value(EventId e) const override {
    for (const auto& [ev, val] : events)
      if (ev == e) return val;
    return 0;
  }
};

TEST(Expr, LeafConstant) {
  ExprArena a;
  MapContext ctx;
  EXPECT_EQ(a.eval(a.constant(42), ctx), 42);
  EXPECT_EQ(a.eval(a.constant(-7), ctx), -7);
}

TEST(Expr, LeafVariable) {
  ExprArena a;
  MapContext ctx;
  ctx.vars = {10, 20, 30};
  EXPECT_EQ(a.eval(a.variable(0), ctx), 10);
  EXPECT_EQ(a.eval(a.variable(2), ctx), 30);
}

TEST(Expr, EventValueZeroWhenAbsent) {
  ExprArena a;
  MapContext ctx;
  ctx.events = {{3, 99}};
  EXPECT_EQ(a.eval(a.event_value(3), ctx), 99);
  EXPECT_EQ(a.eval(a.event_value(4), ctx), 0);
  EXPECT_EQ(a.eval(a.event_present(3), ctx), 1);
  EXPECT_EQ(a.eval(a.event_present(4), ctx), 0);
}

struct OpCase {
  ExprOp op;
  std::int32_t a;
  std::int32_t b;
  std::int32_t expect;
};

class ExprOpSemantics : public ::testing::TestWithParam<OpCase> {};

TEST_P(ExprOpSemantics, BinaryEval) {
  const OpCase& c = GetParam();
  ExprArena arena;
  MapContext ctx;
  const ExprId e =
      arena.binary(c.op, arena.constant(c.a), arena.constant(c.b));
  EXPECT_EQ(arena.eval(e, ctx), c.expect)
      << expr_op_name(c.op) << "(" << c.a << "," << c.b << ")";
  EXPECT_EQ(apply_expr_op(c.op, c.a, c.b), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprOpSemantics,
    ::testing::Values(
        OpCase{ExprOp::kAdd, 3, 4, 7}, OpCase{ExprOp::kAdd, -3, 1, -2},
        OpCase{ExprOp::kAdd, 0x7fffffff, 1, INT32_MIN},  // wraparound
        OpCase{ExprOp::kSub, 3, 4, -1},
        OpCase{ExprOp::kSub, INT32_MIN, 1, 0x7fffffff},
        OpCase{ExprOp::kMul, 7, 6, 42}, OpCase{ExprOp::kMul, -3, 5, -15},
        OpCase{ExprOp::kDiv, 42, 6, 7}, OpCase{ExprOp::kDiv, -7, 2, -3},
        OpCase{ExprOp::kDiv, 5, 0, 0},  // guarded divide
        OpCase{ExprOp::kMod, 42, 5, 2}, OpCase{ExprOp::kMod, -7, 3, -1},
        OpCase{ExprOp::kMod, 9, 0, 9}));  // x mod 0 == x

INSTANTIATE_TEST_SUITE_P(
    Bitwise, ExprOpSemantics,
    ::testing::Values(
        OpCase{ExprOp::kBitAnd, 0b1100, 0b1010, 0b1000},
        OpCase{ExprOp::kBitOr, 0b1100, 0b1010, 0b1110},
        OpCase{ExprOp::kBitXor, 0b1100, 0b1010, 0b0110},
        OpCase{ExprOp::kShl, 1, 4, 16},
        OpCase{ExprOp::kShl, 1, 33, 2},   // shift amounts mask to 5 bits
        OpCase{ExprOp::kShr, -16, 2, -4},  // arithmetic
        OpCase{ExprOp::kShr, 16, 2, 4}));

INSTANTIATE_TEST_SUITE_P(
    Relational, ExprOpSemantics,
    ::testing::Values(
        OpCase{ExprOp::kEq, 5, 5, 1}, OpCase{ExprOp::kEq, 5, 6, 0},
        OpCase{ExprOp::kNe, 5, 6, 1}, OpCase{ExprOp::kNe, 5, 5, 0},
        OpCase{ExprOp::kLt, -1, 0, 1}, OpCase{ExprOp::kLt, 0, 0, 0},
        OpCase{ExprOp::kLe, 0, 0, 1}, OpCase{ExprOp::kLe, 1, 0, 0},
        OpCase{ExprOp::kGt, 1, 0, 1}, OpCase{ExprOp::kGt, 0, 0, 0},
        OpCase{ExprOp::kGe, 0, 0, 1}, OpCase{ExprOp::kGe, -1, 0, 0}));

INSTANTIATE_TEST_SUITE_P(
    Logical, ExprOpSemantics,
    ::testing::Values(
        OpCase{ExprOp::kLogicAnd, 2, 3, 1}, OpCase{ExprOp::kLogicAnd, 2, 0, 0},
        OpCase{ExprOp::kLogicOr, 0, 3, 1}, OpCase{ExprOp::kLogicOr, 0, 0, 0}));

TEST(Expr, UnaryOperators) {
  ExprArena a;
  MapContext ctx;
  EXPECT_EQ(a.eval(a.unary(ExprOp::kNeg, a.constant(5)), ctx), -5);
  EXPECT_EQ(a.eval(a.unary(ExprOp::kNeg, a.constant(INT32_MIN)), ctx),
            INT32_MIN);
  EXPECT_EQ(a.eval(a.unary(ExprOp::kBitNot, a.constant(0)), ctx), -1);
  EXPECT_EQ(a.eval(a.unary(ExprOp::kLogicNot, a.constant(0)), ctx), 1);
  EXPECT_EQ(a.eval(a.unary(ExprOp::kLogicNot, a.constant(-3)), ctx), 0);
}

TEST(Expr, NestedTree) {
  // (v0 + 3) * (v1 - v0)
  ExprArena a;
  MapContext ctx;
  ctx.vars = {2, 10};
  const ExprId e = a.binary(
      ExprOp::kMul, a.binary(ExprOp::kAdd, a.variable(0), a.constant(3)),
      a.binary(ExprOp::kSub, a.variable(1), a.variable(0)));
  EXPECT_EQ(a.eval(e, ctx), (2 + 3) * (10 - 2));
}

TEST(Expr, FlattenIsPostOrder) {
  ExprArena a;
  const ExprId l = a.constant(1);
  const ExprId r = a.constant(2);
  const ExprId e = a.binary(ExprOp::kAdd, l, r);
  std::vector<ExprId> out;
  a.flatten(e, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], l);
  EXPECT_EQ(out[1], r);
  EXPECT_EQ(out[2], e);
}

TEST(Expr, TreeSize) {
  ExprArena a;
  const ExprId e = a.binary(
      ExprOp::kAdd, a.constant(1),
      a.binary(ExprOp::kMul, a.variable(0), a.constant(2)));
  EXPECT_EQ(a.tree_size(e), 5u);
}

TEST(Expr, ArityTable) {
  EXPECT_EQ(expr_arity(ExprOp::kConst), 0);
  EXPECT_EQ(expr_arity(ExprOp::kVar), 0);
  EXPECT_EQ(expr_arity(ExprOp::kNeg), 1);
  EXPECT_EQ(expr_arity(ExprOp::kLogicNot), 1);
  EXPECT_EQ(expr_arity(ExprOp::kAdd), 2);
  EXPECT_EQ(expr_arity(ExprOp::kLe), 2);
}

TEST(Expr, ToStringRoundtripsStructure) {
  ExprArena a;
  const ExprId e =
      a.binary(ExprOp::kAdd, a.variable(1), a.constant(7));
  EXPECT_EQ(a.to_string(e), "ADD(v1,7)");
}

TEST(Expr, OpNamesAreUnique) {
  // Names feed the macro-model parameter file; collisions would corrupt it.
  std::vector<std::string> names;
  for (int i = 0; i <= static_cast<int>(ExprOp::kLogicNot); ++i)
    names.push_back(expr_op_name(static_cast<ExprOp>(i)));
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
}

}  // namespace
}  // namespace socpower::cfsm
