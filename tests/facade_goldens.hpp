// The 38 facade-equivalence goldens and their config reconstruction,
// shared by every test that must reproduce them bit-identically:
// test_facade_equivalence.cpp (in-process), and test_serve.cpp (through the
// session server, including after a fresh-process checkpoint restore).
//
// Every row was captured from the pre-refactor monolithic CoEstimator (same
// systems, same configs, hexfloat so no digits are lost). Tags are
// "<system>/<mode...>": system selects the TcpIpParams ("gate" = all
// gate-level HW, "mixed" = gate + RTL), mode the per-run configuration.
// Tests-only header; uses gtest for failure reporting.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/coestimator.hpp"
#include "systems/tcpip.hpp"

namespace socpower::core {

struct GoldenValues {
  double total = 0.0;
  double cpu = 0.0;
  double hw = 0.0;
  double bus = 0.0;
  double cache = 0.0;
  std::uint64_t end_time = 0;
  std::uint64_t reactions = 0;
  std::uint64_t sw_reactions = 0;
  std::uint64_t hw_reactions = 0;
  std::uint64_t iss_invocations = 0;
  std::uint64_t iss_instructions = 0;
  std::uint64_t gate_sim_cycles = 0;
  std::uint64_t cache_hits_served = 0;
  std::uint64_t icache_accesses = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t bus_transfers = 0;
};

struct Golden {
  const char* tag;  // "<system>/<mode...>"
  GoldenValues v;
};

// Captured from the pre-refactor build (commit 7ff29aa) with %a formatting.
inline constexpr Golden kGoldens[] = {
    {"gate/none/batch1/t1", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b63p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 68ull, 7532ull, 96ull, 0ull, 7532ull, 64ull, 100ull}},
    {"gate/none/batch1/t4", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b63p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 68ull, 7532ull, 96ull, 0ull, 7532ull, 64ull, 100ull}},
    {"gate/none/batch0/t1", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 68ull, 7532ull, 96ull, 0ull, 7532ull, 64ull, 100ull}},
    {"gate/none/batch0/t4", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 68ull, 7532ull, 96ull, 0ull, 7532ull, 64ull, 100ull}},
    {"gate/caching/batch1/t1", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b63p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 11ull, 1262ull, 96ull, 57ull, 7532ull, 64ull, 100ull}},
    {"gate/caching/batch1/t4", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b63p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 11ull, 1262ull, 96ull, 57ull, 7532ull, 64ull, 100ull}},
    {"gate/caching/batch0/t1", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 11ull, 1262ull, 96ull, 57ull, 7532ull, 64ull, 100ull}},
    {"gate/caching/batch0/t4", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 11ull, 1262ull, 96ull, 57ull, 7532ull, 64ull, 100ull}},
    {"gate/macromodel/batch1/t1", {0x1.7fa137b7c5254p-12, 0x1.524d3c970f784p-13, 0x1.979ff9f720b63p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 18696ull, 164ull, 68ull, 96ull, 0ull, 0ull, 96ull, 68ull, 7532ull, 64ull, 100ull}},
    {"gate/macromodel/batch1/t4", {0x1.7fa137b7c5254p-12, 0x1.524d3c970f784p-13, 0x1.979ff9f720b63p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 18696ull, 164ull, 68ull, 96ull, 0ull, 0ull, 96ull, 68ull, 7532ull, 64ull, 100ull}},
    {"gate/macromodel/batch0/t1", {0x1.7fa137b7c5254p-12, 0x1.524d3c970f784p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 18696ull, 164ull, 68ull, 96ull, 0ull, 0ull, 96ull, 68ull, 7532ull, 64ull, 100ull}},
    {"gate/macromodel/batch0/t4", {0x1.7fa137b7c5254p-12, 0x1.524d3c970f784p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 18696ull, 164ull, 68ull, 96ull, 0ull, 0ull, 96ull, 68ull, 7532ull, 64ull, 100ull}},
    {"gate/sampling/batch1/t1", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b63p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 65ull, 7202ull, 96ull, 3ull, 7532ull, 64ull, 100ull}},
    {"gate/sampling/batch1/t4", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b63p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 65ull, 7202ull, 96ull, 3ull, 7532ull, 64ull, 100ull}},
    {"gate/sampling/batch0/t1", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 65ull, 7202ull, 96ull, 3ull, 7532ull, 64ull, 100ull}},
    {"gate/sampling/batch0/t4", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 65ull, 7202ull, 96ull, 3ull, 7532ull, 64ull, 100ull}},
    {"gate/accelerate_hw", {0x1.5e125ffe7269cp-12, 0x1.0f2eb59e64401p-13, 0x1.01b17e6bdb6a9p-27, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 11ull, 1262ull, 37ull, 116ull, 7532ull, 64ull, 100ull}},
    {"gate/verify", {0x1.5e11f43b6f892p-12, 0x1.0f2eb59e64401p-13, 0x1.979ff9f720b64p-28, 0x1.aaba4e261af5p-13, 0x1.1bdab935f77e5p-20, 15208ull, 164ull, 68ull, 96ull, 68ull, 7532ull, 96ull, 0ull, 7532ull, 64ull, 100ull}},
    {"gate/separate", {0x1.0d55ef0d30e37p-13, 0x1.0d52bfcd3cf53p-13, 0x1.979ff9f720b64p-28, 0x0p+0, 0x0p+0, 0ull, 164ull, 68ull, 96ull, 68ull, 7532ull, 96ull, 0ull, 0ull, 0ull, 0ull}},
    {"mixed/none/batch1/t1", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/none/batch1/t4", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/none/batch0/t1", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/none/batch0/t4", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/caching/batch1/t1", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 9ull, 1029ull, 15ull, 18ull, 3009ull, 64ull, 39ull}},
    {"mixed/caching/batch1/t4", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 9ull, 1029ull, 15ull, 18ull, 3009ull, 64ull, 39ull}},
    {"mixed/caching/batch0/t1", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 9ull, 1029ull, 15ull, 18ull, 3009ull, 64ull, 39ull}},
    {"mixed/caching/batch0/t4", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 9ull, 1029ull, 15ull, 18ull, 3009ull, 64ull, 39ull}},
    {"mixed/macromodel/batch1/t1", {0x1.25b24b1d3e0a1p-13, 0x1.0c77463530d2bp-14, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 7747ull, 69ull, 27ull, 42ull, 0ull, 0ull, 15ull, 27ull, 3009ull, 64ull, 39ull}},
    {"mixed/macromodel/batch1/t4", {0x1.25b24b1d3e0a1p-13, 0x1.0c77463530d2bp-14, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 7747ull, 69ull, 27ull, 42ull, 0ull, 0ull, 15ull, 27ull, 3009ull, 64ull, 39ull}},
    {"mixed/macromodel/batch0/t1", {0x1.25b24b1d3e0a1p-13, 0x1.0c77463530d2bp-14, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 7747ull, 69ull, 27ull, 42ull, 0ull, 0ull, 15ull, 27ull, 3009ull, 64ull, 39ull}},
    {"mixed/macromodel/batch0/t4", {0x1.25b24b1d3e0a1p-13, 0x1.0c77463530d2bp-14, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 7747ull, 69ull, 27ull, 42ull, 0ull, 0ull, 15ull, 27ull, 3009ull, 64ull, 39ull}},
    {"mixed/sampling/batch1/t1", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/sampling/batch1/t4", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/sampling/batch0/t1", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/sampling/batch0/t4", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/accelerate_hw", {0x1.0a77ad9ea2917p-13, 0x1.ac0415acdf92cp-15, 0x1.63b87b9d782d7p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 9ull, 1029ull, 15ull, 33ull, 3009ull, 64ull, 39ull}},
    {"mixed/verify", {0x1.0a77ad6ddd856p-13, 0x1.ac0415acdf92cp-15, 0x1.6356f18559ad2p-30, 0x1.3cc34a8518dffp-14, 0x1.145114a06e0b8p-21, 6331ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 15ull, 0ull, 3009ull, 64ull, 39ull}},
    {"mixed/separate", {0x1.a9402b6102808p-15, 0x1.a93a74521e337p-15, 0x1.6dc3b91345c92p-29, 0x0p+0, 0x0p+0, 0ull, 69ull, 27ull, 42ull, 27ull, 3009ull, 42ull, 0ull, 0ull, 0ull, 0ull}},
};

inline systems::TcpIpParams params_for(const std::string& system) {
  systems::TcpIpParams p;
  if (system == "gate") {
    p.num_packets = 4;
    p.packet_bytes = 64;
    p.ip_check_in_hw = true;
    p.seed = 7;
  } else {  // "mixed": gate-level + RT-level hardware units
    p.num_packets = 3;
    p.packet_bytes = 32;
    p.ip_check_in_hw = true;
    p.checksum_rtl_estimator = true;
    p.seed = 3;
  }
  return p;
}

inline Acceleration accel_from(const std::string& name) {
  if (name == "none") return Acceleration::kNone;
  if (name == "caching") return Acceleration::kCaching;
  if (name == "macromodel") return Acceleration::kMacroModel;
  if (name == "sampling") return Acceleration::kSampling;
  ADD_FAILURE() << "unknown acceleration " << name;
  return Acceleration::kNone;
}

/// Reconstructs the capture-time configuration from the golden tag.
/// `separate` reports whether the row measures run_separate().
inline CoEstimatorConfig config_for(const std::string& mode, bool* separate) {
  CoEstimatorConfig cfg;
  *separate = false;
  if (mode == "accelerate_hw") {
    cfg.accel = Acceleration::kCaching;
    cfg.accelerate_hw = true;
    cfg.energy_cache.thresh_variance = 0.5;
  } else if (mode == "verify") {
    cfg.verify_lowlevel = true;
  } else if (mode == "separate") {
    *separate = true;
  } else {
    // "<accel>/batch<0|1>/t<threads>"
    const std::size_t slash1 = mode.find('/');
    const std::size_t slash2 = mode.find('/', slash1 + 1);
    cfg.accel = accel_from(mode.substr(0, slash1));
    cfg.hw_batch = mode[slash1 + 6] == '1';
    const unsigned threads =
        static_cast<unsigned>(std::stoul(mode.substr(slash2 + 2)));
    // Flush threads need the batch; with batch off the capture used 1.
    cfg.hw_flush_threads = cfg.hw_batch ? threads : 1;
  }
  return cfg;
}

inline void expect_matches(const RunResults& r, const GoldenValues& g) {
  EXPECT_EQ(r.total_energy, g.total);
  EXPECT_EQ(r.cpu_energy, g.cpu);
  EXPECT_EQ(r.hw_energy, g.hw);
  EXPECT_EQ(r.bus_energy, g.bus);
  EXPECT_EQ(r.cache_energy, g.cache);
  EXPECT_EQ(r.end_time, g.end_time);
  EXPECT_EQ(r.reactions, g.reactions);
  EXPECT_EQ(r.sw_reactions, g.sw_reactions);
  EXPECT_EQ(r.hw_reactions, g.hw_reactions);
  EXPECT_EQ(r.iss_invocations, g.iss_invocations);
  EXPECT_EQ(r.iss_instructions, g.iss_instructions);
  EXPECT_EQ(r.gate_sim_cycles, g.gate_sim_cycles);
  EXPECT_EQ(r.cache_hits_served, g.cache_hits_served);
  EXPECT_EQ(r.icache.accesses, g.icache_accesses);
  EXPECT_EQ(r.icache.misses, g.icache_misses);
  EXPECT_EQ(r.bus_totals.transfers, g.bus_transfers);
}

}  // namespace socpower::core
