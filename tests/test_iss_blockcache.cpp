// The ISS fast path (pre-decoded basic-block cache) must be bit-identical
// to the reference stepping interpreter: same cycles, energy, stalls,
// registers, memory, PC trace and fault reports, for any program. These
// tests run the two paths side by side over randomized programs and over
// targeted corner cases (delay slots, invalidation, faults, budgets).
#include <array>
#include <string>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "iss/assembler.hpp"
#include "iss/iss.hpp"
#include "util/rng.hpp"

namespace socpower::iss {
namespace {

IssConfig config_with_cache(bool on) {
  IssConfig c;
  c.block_cache = on;
  return c;
}

Program asm_ok(std::string_view src) {
  AsmResult res = assemble(src);
  EXPECT_TRUE(res.ok()) << res.error;
  return res.program;
}

/// Everything observable about one run() plus the architectural state after
/// it. Compared field-for-field (energy with EXPECT_EQ: bit identity, not
/// tolerance).
struct Observed {
  RunResult r;
  std::array<std::int32_t, kNumRegisters> regs{};
  std::vector<std::uint32_t> trace;
  std::uint32_t pc = 0;
  std::uint64_t mem_hash = 0;
};

std::uint64_t hash_memory(const Iss& iss, std::uint32_t bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (std::uint32_t a = 0; a < bytes; ++a) {
    h ^= iss.load_byte(a);
    h *= 1099511628211ull;
  }
  return h;
}

Observed observe_run(Iss& iss, std::uint64_t budget) {
  Observed o;
  iss.set_pc_trace(&o.trace);
  o.r = iss.run(budget);
  iss.set_pc_trace(nullptr);
  for (int r = 0; r < kNumRegisters; ++r)
    o.regs[static_cast<std::size_t>(r)] = iss.reg(static_cast<unsigned>(r));
  o.pc = iss.pc();
  o.mem_hash = hash_memory(iss, iss.config().memory_bytes);
  return o;
}

void expect_identical(const Observed& off, const Observed& on,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(off.r.cycles, on.r.cycles);
  EXPECT_EQ(off.r.energy, on.r.energy);  // bitwise, not approximate
  EXPECT_EQ(off.r.instructions, on.r.instructions);
  EXPECT_EQ(off.r.stall_cycles, on.r.stall_cycles);
  EXPECT_EQ(off.r.halted, on.r.halted);
  EXPECT_EQ(off.r.fault, on.r.fault);
  EXPECT_EQ(off.r.fault_addr, on.r.fault_addr);
  EXPECT_EQ(off.regs, on.regs);
  EXPECT_EQ(off.trace, on.trace);
  EXPECT_EQ(off.pc, on.pc);
  EXPECT_EQ(off.mem_hash, on.mem_hash);
}

// -- random program generator ------------------------------------------------

// Opcodes the generator draws from. Control-capable ops are followed by a
// forced non-control instruction so no transfer ever lands in a delay slot
// (the one sequence the ISS asserts against, because the code generator
// never emits it).
const Opcode kPlainOps[] = {
    Opcode::kNop,  Opcode::kMovI, Opcode::kMovHi, Opcode::kAdd,
    Opcode::kSub,  Opcode::kMul,  Opcode::kDiv,   Opcode::kAddI,
    Opcode::kSubI, Opcode::kAnd,  Opcode::kOr,    Opcode::kXor,
    Opcode::kAndI, Opcode::kOrI,  Opcode::kXorI,  Opcode::kSll,
    Opcode::kSrl,  Opcode::kSra,  Opcode::kSllI,  Opcode::kSrlI,
    Opcode::kSraI, Opcode::kSlt,  Opcode::kSltu,  Opcode::kSltI,
    Opcode::kLw,   Opcode::kLb,   Opcode::kLbu,   Opcode::kSw,
    Opcode::kSb};
const Opcode kControlOps[] = {Opcode::kBeq, Opcode::kBne, Opcode::kBlt,
                              Opcode::kBge, Opcode::kJ,   Opcode::kJal,
                              Opcode::kJr,  Opcode::kHalt};

Instruction random_plain(Rng& rng) {
  Instruction ins;
  ins.op = kPlainOps[rng.below(std::size(kPlainOps))];
  ins.rd = static_cast<std::uint8_t>(rng.below(kNumRegisters));
  ins.rs1 = static_cast<std::uint8_t>(rng.below(kNumRegisters));
  ins.rs2 = static_cast<std::uint8_t>(rng.below(kNumRegisters));
  ins.imm = static_cast<std::int32_t>(rng.range(-512, 512));
  if (is_load(ins.op) || is_store(ins.op)) {
    // Bias towards valid addresses (r0 base + small offset) but keep some
    // wild accesses so the trap path is compared too.
    if (rng.chance(0.6)) ins.rs1 = 0;
    ins.imm = static_cast<std::int32_t>(
        rng.chance(0.9) ? rng.below(1024) : rng.range(-40000, 80000));
  }
  return ins;
}

Instruction random_control(Rng& rng, std::uint32_t pos, std::uint32_t len) {
  Instruction ins;
  ins.op = kControlOps[rng.below(std::size(kControlOps))];
  ins.rs1 = static_cast<std::uint8_t>(rng.below(kNumRegisters));
  ins.rs2 = static_cast<std::uint8_t>(rng.below(kNumRegisters));
  if (is_branch(ins.op)) {
    // Mostly local, occasionally off the ends (lands in default-HALT imem).
    ins.imm = static_cast<std::int32_t>(rng.range(-8, 10));
    if (static_cast<std::int64_t>(pos) + ins.imm < 0) ins.imm = 1;
  } else if (ins.op == Opcode::kJ || ins.op == Opcode::kJal) {
    ins.imm = static_cast<std::int32_t>(
        rng.chance(0.9) ? rng.below(len) : len + rng.below(500));
    if (ins.op == Opcode::kJal) ins.rd = 30;
  }
  return ins;
}

/// A random program: straight-line stretches separated by control ops, with
/// a HALT-heavy tail. Instruction memory outside the program is the default
/// HALT fill, so stray jumps terminate cleanly; the run budget bounds loops.
Program random_program(Rng& rng) {
  const auto len = static_cast<std::uint32_t>(rng.range(8, 96));
  Program prog;
  bool force_plain = true;  // never start with a dangling delay slot producer
  for (std::uint32_t i = 0; i < len; ++i) {
    if (!force_plain && rng.chance(0.22)) {
      prog.push_back(random_control(rng, i, len));
      force_plain = true;  // the delay slot must not transfer
    } else {
      prog.push_back(random_plain(rng));
      force_plain = false;
    }
  }
  prog.push_back(Instruction{Opcode::kHalt});
  return prog;
}

// -- tests --------------------------------------------------------------------

class BlockCacheFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockCacheFuzz, BitIdenticalToReferenceInterpreter) {
  const std::uint64_t seed = GetParam();
  Rng rng(Rng::for_stream(seed, 0));
  const InstructionPowerModel model = InstructionPowerModel::sparclite();

  for (int p = 0; p < 40; ++p) {
    SCOPED_TRACE("program " + std::to_string(p));
    const Program prog = random_program(rng);
    Iss off(model, config_with_cache(false));
    Iss on(model, config_with_cache(true));
    off.load_program(prog, 0);
    on.load_program(prog, 0);

    // Cold cache.
    off.set_pc(0);
    on.set_pc(0);
    expect_identical(observe_run(off, 600), observe_run(on, 600), "cold");

    // Warm cache, dirty registers and circuit state (no reset): blocks are
    // replayed with a different incoming energy class and load-use state.
    off.set_pc(0);
    on.set_pc(0);
    expect_identical(observe_run(off, 600), observe_run(on, 600), "warm");

    // Tiny budget: exercises budget expiry mid-program and the
    // block-larger-than-budget fallback to the stepping path.
    off.reset_cpu();
    on.reset_cpu();
    expect_identical(observe_run(off, 7), observe_run(on, 7), "budget 7");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockCacheFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(BlockCacheFuzzDsp, BitIdenticalWithDataDependentModel) {
  // The data-dependent (DSP-style) term stays live in replay; make sure the
  // Hamming-distance chaining across block boundaries agrees too.
  Rng rng(Rng::for_stream(99, 0));
  const InstructionPowerModel model = InstructionPowerModel::dsp_like(0.05);
  for (int p = 0; p < 15; ++p) {
    SCOPED_TRACE("program " + std::to_string(p));
    const Program prog = random_program(rng);
    Iss off(model, config_with_cache(false));
    Iss on(model, config_with_cache(true));
    off.load_program(prog, 0);
    on.load_program(prog, 0);
    expect_identical(observe_run(off, 600), observe_run(on, 600), "cold");
    off.set_pc(0);
    on.set_pc(0);
    expect_identical(observe_run(off, 600), observe_run(on, 600), "warm");
  }
}

TEST(BlockCache, TakenAndUntakenBranchWithDelaySlot) {
  // The delay-slot addi must execute exactly once whether or not the branch
  // is taken; the branch outcome is steered by the r2 constant.
  for (const bool taken : {true, false}) {
    const std::string src = std::string("      movi r1, 5\n") +
                            (taken ? "      movi r2, 5\n" : "      movi r2, 6\n") +
                            R"(      beq r1, r2, skip
      addi r3, r3, 1
      movi r4, 111
skip: movi r5, 222
      halt
)";
    const Program prog = asm_ok(src);
    Iss off(InstructionPowerModel::sparclite(), config_with_cache(false));
    Iss on(InstructionPowerModel::sparclite(), config_with_cache(true));
    off.load_program(prog, 0);
    on.load_program(prog, 0);
    off.set_pc(0);
    on.set_pc(0);
    expect_identical(observe_run(off, 100), observe_run(on, 100),
                     taken ? "taken" : "untaken");
    EXPECT_EQ(on.reg(3), 1);  // delay slot executed exactly once
    EXPECT_EQ(on.reg(4), taken ? 0 : 111);
    EXPECT_EQ(on.reg(5), 222);
  }
}

TEST(BlockCache, ReplaySeesCurrentRegisterAndMemoryState) {
  // Same block replayed twice with different data must produce different
  // architectural results (the cache precomputes accounting, not values).
  const Program prog = asm_ok(R"(
      lw r1, 0(r0)
      addi r1, r1, 1
      sw r1, 0(r0)
      halt
)");
  Iss iss(InstructionPowerModel::sparclite(), config_with_cache(true));
  iss.load_program(prog, 0);
  iss.store_word(0, 41);
  iss.set_pc(0);
  ASSERT_TRUE(iss.run().halted);
  EXPECT_EQ(iss.load_word(0), 42);
  iss.set_pc(0);
  ASSERT_TRUE(iss.run().halted);
  EXPECT_EQ(iss.load_word(0), 43);
  EXPECT_GE(iss.block_cache_stats().hits, 1u);
}

TEST(BlockCache, LoadProgramInvalidatesCachedBlocks) {
  const Program a = asm_ok("movi r1, 10\nhalt\n");
  const Program b = asm_ok("movi r1, 77\nhalt\n");
  Iss iss(InstructionPowerModel::sparclite(), config_with_cache(true));
  iss.load_program(a, 0);
  iss.set_pc(0);
  ASSERT_TRUE(iss.run().halted);
  EXPECT_EQ(iss.reg(1), 10);
  const std::uint64_t decodes_a = iss.block_cache_stats().decodes;

  iss.load_program(b, 0);  // must drop blocks decoded from program A
  iss.reset_cpu();
  ASSERT_TRUE(iss.run().halted);
  EXPECT_EQ(iss.reg(1), 77);
  EXPECT_GE(iss.block_cache_stats().invalidations, 2u);  // both loads
  EXPECT_GT(iss.block_cache_stats().decodes, decodes_a);
}

TEST(BlockCache, SurvivesResetCpu) {
  const Program prog =
      asm_ok("movi r1, 3\nmovi r2, 4\nadd r3, r1, r2\nhalt\n");
  Iss iss(InstructionPowerModel::sparclite(), config_with_cache(true));
  iss.load_program(prog, 0);
  iss.set_pc(0);
  ASSERT_TRUE(iss.run().halted);
  const std::uint64_t decodes = iss.block_cache_stats().decodes;
  iss.reset_cpu();  // the co-estimator does this before every transition
  ASSERT_TRUE(iss.run().halted);
  EXPECT_EQ(iss.reg(3), 7);
  EXPECT_EQ(iss.block_cache_stats().decodes, decodes);  // pure replay
  EXPECT_GE(iss.block_cache_stats().hits, 1u);
}

TEST(BlockCache, CapacityBoundTriggersGenerationClear) {
  IssConfig cfg = config_with_cache(true);
  cfg.block_cache_max_blocks = 4;
  // Each jump target starts a new block: more distinct blocks than capacity.
  Program prog;
  for (int i = 0; i < 12; ++i) {
    prog.push_back({Opcode::kAddI, 1, 1, 0, 1});
    prog.push_back({Opcode::kBne, 0, 1, 1, 0});  // never taken (r1 != r1 false)
  }
  prog.push_back(Instruction{Opcode::kHalt});
  Iss off(InstructionPowerModel::sparclite(), config_with_cache(false));
  Iss on(InstructionPowerModel::sparclite(), cfg);
  off.load_program(prog, 0);
  on.load_program(prog, 0);
  expect_identical(observe_run(off, 200), observe_run(on, 200), "pass 1");
  off.set_pc(0);
  on.set_pc(0);
  expect_identical(observe_run(off, 200), observe_run(on, 200), "pass 2");
  EXPECT_GE(on.block_cache_stats().capacity_flushes, 1u);
}

TEST(MemoryTrap, OutOfRangeLoadFaultsInsteadOfReadingWild) {
  // r2 = 1 MiB, beyond the 64 KiB data memory.
  const Program prog = asm_ok(R"(
      movi r1, 1
      movhi r2, 16
      lw r3, 0(r2)
      movi r4, 9
      halt
)");
  for (const bool cache : {false, true}) {
    SCOPED_TRACE(cache ? "cache on" : "cache off");
    Iss iss(InstructionPowerModel::sparclite(), config_with_cache(cache));
    iss.load_program(prog, 0);
    iss.set_pc(0);
    const RunResult r = iss.run();
    EXPECT_TRUE(r.fault);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.fault_addr, 1u << 20);
    EXPECT_EQ(r.instructions, 2u);  // the faulting lw is not accounted
    EXPECT_EQ(iss.pc(), 2u);        // left pointing at the lw
    EXPECT_EQ(iss.reg(3), 0);       // load did not retire
    EXPECT_EQ(iss.reg(4), 0);       // nothing after the fault ran
  }
}

TEST(MemoryTrap, OutOfRangeStoreFaults) {
  const Program prog = asm_ok("movi r1, -4\nsw r1, 0(r1)\nhalt\n");
  for (const bool cache : {false, true}) {
    SCOPED_TRACE(cache ? "cache on" : "cache off");
    Iss iss(InstructionPowerModel::sparclite(), config_with_cache(cache));
    iss.load_program(prog, 0);
    iss.set_pc(0);
    const RunResult r = iss.run();
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(r.fault_addr, 0xfffffffcu);  // wraps; checked without overflow
  }
}

TEST(MemoryTrap, FetchPastInstructionMemoryFaults) {
  Iss iss(InstructionPowerModel::sparclite(), config_with_cache(true));
  iss.set_pc(iss.config().memory_bytes / kInstrBytes);  // first bad word
  const RunResult r = iss.run(10);
  EXPECT_TRUE(r.fault);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.instructions, 0u);
}

TEST(MemoryTrap, UndecodableOpcodeFaults) {
  Program prog = asm_ok("movi r1, 5\n");
  Instruction bad;
  bad.op = static_cast<Opcode>(200);
  prog.push_back(bad);
  for (const bool cache : {false, true}) {
    SCOPED_TRACE(cache ? "cache on" : "cache off");
    Iss iss(InstructionPowerModel::sparclite(), config_with_cache(cache));
    iss.load_program(prog, 0);
    iss.set_pc(0);
    const RunResult r = iss.run(10);
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(r.instructions, 1u);
    EXPECT_EQ(iss.pc(), 1u);
  }
}

TEST(BlockCache, DisabledCacheKeepsStatsAtZero) {
  const Program prog = asm_ok("movi r1, 1\nhalt\n");
  Iss iss(InstructionPowerModel::sparclite(), config_with_cache(false));
  iss.load_program(prog, 0);
  iss.set_pc(0);
  ASSERT_TRUE(iss.run().halted);
  EXPECT_EQ(iss.block_cache_stats().hits, 0u);
  EXPECT_EQ(iss.block_cache_stats().decodes, 0u);
}

}  // namespace
}  // namespace socpower::iss
