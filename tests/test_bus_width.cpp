// Multi-byte data-lane tests: 16/32-bit buses move several bytes per beat,
// cutting transfer cycles and address-line switching, with consistent byte
// accounting across both bus models.
#include <gtest/gtest.h>

#include "bus/bus_model.hpp"

namespace socpower::bus {
namespace {

BusParams width_params(unsigned data_bits) {
  BusParams p;
  p.data_bits = data_bits;
  p.dma_block_size = 16;
  p.handshake_cycles = 2;
  p.line_cap_f = 1e-9;
  return p;
}

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = static_cast<std::uint8_t>(i * 37 + 11);
  return d;
}

TEST(BusWidth, WiderLanesFewerBeats) {
  const auto data = payload(16);
  BusRequest r;
  r.data = data;
  BusModel b8(width_params(8));
  BusModel b16(width_params(16));
  BusModel b32(width_params(32));
  const auto t8 = b8.transfer(0, r);
  const auto t16 = b16.transfer(0, r);
  const auto t32 = b32.transfer(0, r);
  EXPECT_EQ(t8.busy_cycles, 2u + 16u);
  EXPECT_EQ(t16.busy_cycles, 2u + 8u);
  EXPECT_EQ(t32.busy_cycles, 2u + 4u);
  // Bytes accounted identically.
  EXPECT_EQ(b8.totals().bytes, 16u);
  EXPECT_EQ(b32.totals().bytes, 16u);
}

TEST(BusWidth, AddressActivityShrinksWithWidth) {
  const auto data = payload(32);
  BusRequest r;
  r.data = data;
  r.addr = 0;
  BusModel b8(width_params(8));
  BusModel b32(width_params(32));
  b8.transfer(0, r);
  b32.transfer(0, r);
  // One address per beat: 4x fewer beats => fewer address toggles.
  EXPECT_LT(b32.totals().addr_toggles, b8.totals().addr_toggles);
}

TEST(BusWidth, DataTogglesAreWordwise) {
  // Alternating 0x00/0xFF bytes: on a 16-bit lane each beat word is 0xFF00
  // or packed {00,FF} = 0xFF00 repeatedly -> after the first beat no
  // toggles; on an 8-bit lane every beat flips all 8 lines.
  std::vector<std::uint8_t> alt;
  for (int i = 0; i < 16; ++i) alt.push_back(i % 2 ? 0xFF : 0x00);
  BusRequest r;
  r.data = alt;
  BusModel b8(width_params(8));
  BusModel b16(width_params(16));
  b8.transfer(0, r);
  b16.transfer(0, r);
  EXPECT_GT(b8.totals().data_toggles, 100u);  // 15 flips x 8 lines
  EXPECT_EQ(b16.totals().data_toggles, 8u);   // one transition to 0xFF00
}

TEST(BusWidth, SchedulerAgreesWithAtomicModel) {
  const auto data = payload(24);
  for (const unsigned bits : {8u, 16u, 32u}) {
    BusRequest r;
    r.data = data;
    BusModel atomic(width_params(bits));
    BusScheduler sched(width_params(bits));
    const auto ra = atomic.transfer(0, r);
    sched.submit(0, r);
    BusResult rs;
    while (sched.has_work())
      for (const auto& c : sched.advance(sched.next_boundary()))
        rs = c.result;
    EXPECT_EQ(rs.end, ra.end) << bits;
    EXPECT_EQ(rs.grants, ra.grants) << bits;
    EXPECT_DOUBLE_EQ(rs.energy, ra.energy) << bits;
    EXPECT_EQ(sched.totals().data_toggles, atomic.totals().data_toggles)
        << bits;
  }
}

TEST(BusWidth, OddTailBytesPackIntoPartialBeat) {
  BusModel b32(width_params(32));
  BusRequest r;
  r.data = payload(5);  // one full word + one 1-byte beat
  const auto res = b32.transfer(0, r);
  EXPECT_EQ(res.busy_cycles, 2u + 2u);
  EXPECT_EQ(b32.totals().bytes, 5u);
}

}  // namespace
}  // namespace socpower::bus
