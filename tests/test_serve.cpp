// Session-server end-to-end tests.
//
// The headline contract mirrors the ISSUE's acceptance criteria: all 38
// facade goldens reproduce bit-identically when estimated through the
// server (two sessions serve all 38 rows — every config difference inside a
// system is a per-run knob), a checkpoint written by a hot server restores
// in a FRESH process and replays the goldens bit-identically there, and a
// session's second request shows a strictly higher warm-cache hit rate than
// its first.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/wire.hpp"
#include "facade_goldens.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "systems/prodcons.hpp"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace socpower::serve {
namespace {

std::string unique_socket(const char* tag) {
  return ::testing::TempDir() + "socpower_serve_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// SystemParams of the goldens' two TcpIp configurations.
SystemParams golden_system(const std::string& system) {
  const systems::TcpIpParams p = core::params_for(system);
  SystemParams sp;
  sp.name = "tcpip";
  sp.set("num_packets", p.num_packets);
  sp.set("packet_bytes", p.packet_bytes);
  sp.set("ip_check_in_hw", p.ip_check_in_hw ? 1 : 0);
  sp.set("checksum_rtl_estimator", p.checksum_rtl_estimator ? 1 : 0);
  sp.set("seed", static_cast<std::int64_t>(p.seed));
  return sp;
}

/// RunRequest reconstructed from a golden tag's mode suffix.
RunRequest golden_request(const std::string& mode) {
  bool separate = false;
  const core::CoEstimatorConfig cfg = core::config_for(mode, &separate);
  RunRequest rr = RunRequest::from(cfg);
  rr.separate = separate;
  return rr;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!dist::supported()) GTEST_SKIP() << "no fork/socketpair";
  }

  bool start(const char* tag, unsigned threads = 2,
             std::size_t max_sessions = 0) {
    ServerConfig cfg;
    cfg.socket_path = unique_socket(tag);
    cfg.threads = threads;
    cfg.max_sessions = max_sessions;
    server_ = std::make_unique<Server>(cfg);
    return server_->start();
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, GoldensBitIdenticalThroughServer) {
  ASSERT_TRUE(start("goldens"));
  std::string error;
  Client client = Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(client.valid()) << error;

  // Two sessions cover all 38 rows: everything inside a system is per-run.
  std::string keys[2];
  for (int i = 0; i < 2; ++i) {
    bool created = false;
    ASSERT_TRUE(client.open_session(golden_system(i == 0 ? "gate" : "mixed"),
                                    StructuralConfig{}, &keys[i], &created,
                                    &error))
        << error;
    EXPECT_TRUE(created);
  }
  EXPECT_NE(keys[0], keys[1]);

  for (const core::Golden& golden : core::kGoldens) {
    SCOPED_TRACE(golden.tag);
    const std::string tag = golden.tag;
    const std::size_t slash = tag.find('/');
    const std::string& key = tag.substr(0, slash) == "gate" ? keys[0]
                                                            : keys[1];
    core::RunResults res;
    RequestStats stats;
    ASSERT_TRUE(client.estimate(key, golden_request(tag.substr(slash + 1)),
                                &res, &stats, &error))
        << error;
    core::expect_matches(res, golden.v);
  }

  ServeStatsReply stats;
  ASSERT_TRUE(client.stats(&stats, &error)) << error;
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(std::size(
                                core::kGoldens)));
  EXPECT_EQ(stats.latency_count, stats.requests);
  EXPECT_NE(stats.rendered.find("serve.sessions"), std::string::npos);
}

#if !defined(_WIN32)
TEST_F(ServeTest, CheckpointFromHotServerRestoresInFreshProcess) {
  // Hot server: open both golden sessions, warm them with one caching run
  // each, pull checkpoints.
  ASSERT_TRUE(start("hot"));
  std::string error;
  Client hot = Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(hot.valid()) << error;
  std::vector<std::uint8_t> blobs[2];
  for (int i = 0; i < 2; ++i) {
    std::string key;
    ASSERT_TRUE(hot.open_session(golden_system(i == 0 ? "gate" : "mixed"),
                                 StructuralConfig{}, &key, nullptr, &error))
        << error;
    core::RunResults res;
    ASSERT_TRUE(hot.estimate(key, golden_request("caching/batch1/t1"), &res,
                             nullptr, &error))
        << error;
    ASSERT_TRUE(hot.checkpoint(key, &blobs[i], &error)) << error;
    EXPECT_GT(blobs[i].size(), 24u);  // header + a non-trivial payload
  }
  server_->stop();
  server_.reset();

  // Fresh process: a forked child hosts a brand-new server (empty session
  // table, cold caches). All assertions stay in the parent.
  const std::string fresh_path = unique_socket("fresh");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ServerConfig cfg;
    cfg.socket_path = fresh_path;
    cfg.threads = 2;
    Server fresh(cfg);
    if (!fresh.start()) ::_exit(1);
    while (fresh.running())
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fresh.stop();
    ::_exit(0);
  }

  // Wait for the child's socket to come up.
  Client client;
  for (int attempt = 0; attempt < 100 && !client.valid(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    client = Client::connect(fresh_path, &error);
  }
  ASSERT_TRUE(client.valid()) << error;

  std::string keys[2];
  for (int i = 0; i < 2; ++i) {
    bool restored = false;
    ASSERT_TRUE(client.restore(blobs[i], &keys[i], &restored, &error))
        << error;
    EXPECT_TRUE(restored);
  }

  // The restored sessions replay every golden row bit-identically.
  for (const core::Golden& golden : core::kGoldens) {
    SCOPED_TRACE(golden.tag);
    const std::string tag = golden.tag;
    const std::size_t slash = tag.find('/');
    const std::string& key = tag.substr(0, slash) == "gate" ? keys[0]
                                                            : keys[1];
    core::RunResults res;
    RequestStats stats;
    ASSERT_TRUE(client.estimate(key, golden_request(tag.substr(slash + 1)),
                                &res, &stats, &error))
        << error;
    EXPECT_TRUE(stats.restored_session);
    core::expect_matches(res, golden.v);
  }

  ServeStatsReply stats;
  ASSERT_TRUE(client.stats(&stats, &error)) << error;
  EXPECT_EQ(stats.restore_hits, 2u);
  EXPECT_TRUE(client.shutdown(&error)) << error;
  int status = -1;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}
#endif

TEST_F(ServeTest, SecondRequestHasStrictlyHigherWarmHitRate) {
  ASSERT_TRUE(start("warm"));
  std::string error;
  Client client = Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(client.valid()) << error;
  std::string key;
  ASSERT_TRUE(client.open_session(golden_system("gate"), StructuralConfig{},
                                  &key, nullptr, &error))
      << error;
  const RunRequest rr = golden_request("none/batch1/t1");
  core::RunResults r1, r2;
  RequestStats s1, s2;
  ASSERT_TRUE(client.estimate(key, rr, &r1, &s1, &error)) << error;
  ASSERT_TRUE(client.estimate(key, rr, &r2, &s2, &error)) << error;
  // Bit-identical results either way...
  EXPECT_EQ(r1.total_energy, r2.total_energy);
  EXPECT_EQ(r1.iss_instructions, r2.iss_instructions);
  // ...but the warm request hits the persistent caches at a strictly
  // higher rate (within-run locality gives even a cold run some hits, so
  // compare rates, not counts).
  ASSERT_GT(s1.warm_hits + s1.warm_fills, 0u);
  ASSERT_GT(s2.warm_hits + s2.warm_fills, 0u);
  const double cold_rate = static_cast<double>(s1.warm_hits) /
                           static_cast<double>(s1.warm_hits + s1.warm_fills);
  const double warm_rate = static_cast<double>(s2.warm_hits) /
                           static_cast<double>(s2.warm_hits + s2.warm_fills);
  EXPECT_GT(warm_rate, cold_rate);
  EXPECT_EQ(s2.run_index, 1u);
}

TEST_F(ServeTest, ConcurrentStructurallyDistinctSessionsStayIsolated) {
  ASSERT_TRUE(start("isolate", 4));
  // Two structurally distinct sessions (different TcpIp seeds => different
  // packet contents => different energies), driven concurrently from two
  // connections. Each must reproduce its own in-process reference exactly.
  SystemParams sys_a = golden_system("gate");
  SystemParams sys_b = golden_system("gate");
  sys_b.set("seed", 1234);
  const RunRequest rr = golden_request("caching/batch1/t1");

  core::RunResults ref_a, ref_b;
  {
    std::string error;
    std::unique_ptr<Session> sa =
        Session::create(sys_a, StructuralConfig{}, &error);
    ASSERT_NE(sa, nullptr) << error;
    ASSERT_TRUE(sa->estimate(rr, &ref_a, nullptr, &error)) << error;
    std::unique_ptr<Session> sb =
        Session::create(sys_b, StructuralConfig{}, &error);
    ASSERT_NE(sb, nullptr) << error;
    ASSERT_TRUE(sb->estimate(rr, &ref_b, nullptr, &error)) << error;
  }
  ASSERT_NE(ref_a.total_energy, ref_b.total_energy)
      << "test systems unexpectedly equivalent";

  constexpr int kRounds = 4;
  core::RunResults got_a[kRounds], got_b[kRounds];
  bool ok_a = false, ok_b = false;
  std::string err_a, err_b;
  std::thread ta([&] {
    Client c = Client::connect(server_->socket_path(), &err_a);
    if (!c.valid()) return;
    std::string key;
    if (!c.open_session(sys_a, StructuralConfig{}, &key, nullptr, &err_a))
      return;
    for (int i = 0; i < kRounds; ++i)
      if (!c.estimate(key, rr, &got_a[i], nullptr, &err_a)) return;
    ok_a = true;
  });
  std::thread tb([&] {
    Client c = Client::connect(server_->socket_path(), &err_b);
    if (!c.valid()) return;
    std::string key;
    if (!c.open_session(sys_b, StructuralConfig{}, &key, nullptr, &err_b))
      return;
    for (int i = 0; i < kRounds; ++i)
      if (!c.estimate(key, rr, &got_b[i], nullptr, &err_b)) return;
    ok_b = true;
  });
  ta.join();
  tb.join();
  ASSERT_TRUE(ok_a) << err_a;
  ASSERT_TRUE(ok_b) << err_b;
  for (int i = 0; i < kRounds; ++i) {
    EXPECT_EQ(got_a[i].total_energy, ref_a.total_energy) << "round " << i;
    EXPECT_EQ(got_b[i].total_energy, ref_b.total_energy) << "round " << i;
  }
}

TEST_F(ServeTest, ProdConsSessionsWorkToo) {
  ASSERT_TRUE(start("prodcons"));
  std::string error;
  Client client = Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(client.valid()) << error;
  SystemParams sp;
  sp.name = "prodcons";
  sp.set("num_packets", 4);
  sp.set("horizon", 2048);
  std::string key;
  ASSERT_TRUE(client.open_session(sp, StructuralConfig{}, &key, nullptr,
                                  &error))
      << error;
  core::RunResults res;
  ASSERT_TRUE(client.estimate(key, RunRequest{}, &res, nullptr, &error))
      << error;
  EXPECT_GT(res.total_energy, 0.0);
  EXPECT_GT(res.reactions, 0u);
}

TEST_F(ServeTest, BoundedTableEvictsLeastRecentlyUsedSession) {
  // Cap the table at 2 sessions: opening a third evicts the LRU one. Which
  // one is LRU is steered by touching session A between the opens.
  ASSERT_TRUE(start("evict", 2, /*max_sessions=*/2));
  std::string error;
  Client client = Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(client.valid()) << error;

  SystemParams sys[3];
  for (int i = 0; i < 3; ++i) {
    sys[i].name = "prodcons";
    sys[i].set("num_packets", 2 + i);  // three distinct sessions
    sys[i].set("horizon", 1024);
  }
  std::string keys[3];
  ASSERT_TRUE(client.open_session(sys[0], StructuralConfig{}, &keys[0],
                                  nullptr, &error))
      << error;
  ASSERT_TRUE(client.open_session(sys[1], StructuralConfig{}, &keys[1],
                                  nullptr, &error))
      << error;
  // Touch A so B becomes least-recently-used.
  core::RunResults res;
  ASSERT_TRUE(client.estimate(keys[0], RunRequest{}, &res, nullptr, &error))
      << error;
  // Opening C (at the cap) evicts B, not A.
  ASSERT_TRUE(client.open_session(sys[2], StructuralConfig{}, &keys[2],
                                  nullptr, &error))
      << error;
  ASSERT_TRUE(client.estimate(keys[0], RunRequest{}, &res, nullptr, &error))
      << "session A should have survived: " << error;
  EXPECT_FALSE(client.estimate(keys[1], RunRequest{}, &res, nullptr, &error));
  EXPECT_NE(error.find("unknown session"), std::string::npos) << error;

  ServeStatsReply stats;
  ASSERT_TRUE(client.stats(&stats, &error)) << error;
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_NE(stats.rendered.find("serve.evictions"), std::string::npos);

  // An evicted session is re-openable — warm state gone, key identical.
  std::string reopened;
  bool created = false;
  ASSERT_TRUE(client.open_session(sys[1], StructuralConfig{}, &reopened,
                                  &created, &error))
      << error;
  EXPECT_EQ(reopened, keys[1]);
  EXPECT_TRUE(created);
}

TEST_F(ServeTest, ErrorRepliesNameTheProblem) {
  ASSERT_TRUE(start("errors"));
  std::string error;
  Client client = Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(client.valid()) << error;

  // Unknown session key.
  core::RunResults res;
  EXPECT_FALSE(client.estimate("deadbeefdeadbeef", RunRequest{}, &res,
                               nullptr, &error));
  EXPECT_NE(error.find("unknown session"), std::string::npos) << error;

  // Unknown system / unknown parameter.
  SystemParams bad;
  bad.name = "warp-drive";
  EXPECT_FALSE(client.open_session(bad, StructuralConfig{}, nullptr, nullptr,
                                   &error));
  EXPECT_NE(error.find("unknown system"), std::string::npos) << error;
  SystemParams typo = golden_system("gate");
  typo.set("packet_bites", 64);
  EXPECT_FALSE(client.open_session(typo, StructuralConfig{}, nullptr, nullptr,
                                   &error));
  EXPECT_NE(error.find("unknown parameter"), std::string::npos) << error;

  // Invalid per-run knobs are rejected by validation, not crashed on.
  std::string key;
  ASSERT_TRUE(client.open_session(golden_system("mixed"), StructuralConfig{},
                                  &key, nullptr, &error))
      << error;
  RunRequest invalid = golden_request("none/batch0/t1");
  invalid.hw_flush_threads = 4;  // parallel flush needs hw_batch
  EXPECT_FALSE(client.estimate(key, invalid, &res, nullptr, &error));
  EXPECT_NE(error.find("invalid run request"), std::string::npos) << error;

  // Restoring garbage bytes fails with the decoder's message.
  EXPECT_FALSE(client.restore({1, 2, 3}, nullptr, nullptr, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  // A protocol-version mismatch is refused at hello.
  dist::Channel raw = dist::Channel::connect_unix(server_->socket_path());
  ASSERT_TRUE(raw.valid());
  dist::WireWriter w;
  w.put_u32(kServeProtocolVersion + 1);
  ASSERT_TRUE(raw.send_frame(dist::MsgType::kServeHello, w.bytes(), 5000));
  dist::Frame reply;
  ASSERT_EQ(raw.recv_frame(&reply, 5000), dist::Channel::RecvStatus::kOk);
  EXPECT_EQ(reply.type, dist::MsgType::kServeError);
}

TEST_F(ServeTest, ShutdownRequestStopsTheServer) {
  ASSERT_TRUE(start("shutdown"));
  std::string error;
  Client client = Client::connect(server_->socket_path(), &error);
  ASSERT_TRUE(client.valid()) << error;
  ASSERT_TRUE(client.shutdown(&error)) << error;
  for (int i = 0; i < 100 && server_->running(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(server_->running());
  server_->stop();
  // A second start on the same path works after a clean stop.
  EXPECT_TRUE(server_->start());
}

}  // namespace
}  // namespace socpower::serve
