// Benchmark-system tests: functional correctness of the TCP/IP subsystem
// (real Internet checksums over randomized payloads), the producer/consumer
// timing chain, and the dashboard scenario behaviors.
#include <gtest/gtest.h>

#include "core/coestimator.hpp"
#include "systems/dashboard.hpp"
#include "systems/prodcons.hpp"
#include "systems/tcpip.hpp"

namespace socpower::systems {
namespace {

TEST(TcpIp, ExpectedChecksumMatchesReferenceImplementation) {
  TcpIpSystem sys({.num_packets = 2, .packet_bytes = 5, .seed = 42});
  // Independent reference: RFC1071-style 16-bit one's-complement sum.
  for (std::size_t p = 0; p < sys.packets().size(); ++p) {
    const auto& pkt = sys.packets()[p];
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < pkt.size(); i += 2) {
      std::uint32_t w = pkt[i];
      if (i + 1 < pkt.size()) w |= static_cast<std::uint32_t>(pkt[i + 1]) << 8;
      acc += w;
      while (acc > 0xFFFF) acc = (acc & 0xFFFF) + (acc >> 16);
    }
    EXPECT_EQ(sys.expected_checksum(p), acc);
  }
}

class TcpIpChecksumSweep
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(TcpIpChecksumSweep, AllPacketsVerifyAcrossSizesAndDma) {
  const auto [bytes, dma] = GetParam();
  TcpIpParams p;
  p.num_packets = 5;
  p.packet_bytes = bytes;
  p.dma_block_size = dma;
  p.seed = static_cast<std::uint64_t>(bytes) * 131 + dma;
  TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  cfg.verify_lowlevel = true;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(sys.packets_ok(est), 5) << "bytes=" << bytes << " dma=" << dma;
  EXPECT_EQ(sys.packets_bad(est), 0);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDma, TcpIpChecksumSweep,
    ::testing::Combine(::testing::Values(3, 8, 17, 32, 64, 127),
                       ::testing::Values(2u, 4u, 16u, 64u, 128u)),
    [](const auto& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_dma" +
             std::to_string(std::get<1>(info.param));
    });

TEST(TcpIp, BackToBackPacketsSurviveQueueing) {
  // Arrival gap far smaller than the processing time: every packet must
  // still be checked exactly once (exercises the queue depth logic and the
  // create_pack pending counter).
  TcpIpParams p;
  p.num_packets = 8;
  p.packet_bytes = 48;
  p.packet_gap = 3;
  TcpIpSystem sys(p);
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  est.run(sys.stimulus());
  EXPECT_EQ(sys.packets_ok(est), 8);
  EXPECT_EQ(sys.packets_bad(est), 0);
}

TEST(TcpIp, BusSeesWritesAndReads) {
  TcpIpSystem sys({.num_packets = 3, .packet_bytes = 32});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());
  // Each packet is written once by create_pack and read once by checksum,
  // plus one small header fetch per packet by ip_check.
  EXPECT_EQ(r.bus_totals.bytes, 3u * (32 + 32 + 4));
  EXPECT_GE(r.bus_totals.grants, 3u * (2 + 2 + 1));  // dma=16: 2 each way
}

TEST(TcpIp, DmaConfigChangesGrantCountNotFunction) {
  std::uint64_t grants_small = 0, grants_large = 0;
  for (const unsigned dma : {4u, 64u}) {
    TcpIpSystem sys({.num_packets = 2, .packet_bytes = 64,
                     .dma_block_size = dma, .seed = 9});
    core::CoEstimator est(&sys.network(), {});
    sys.configure(est);
    est.prepare();
    const auto r = est.run(sys.stimulus());
    EXPECT_EQ(sys.packets_ok(est), 2);
    (dma == 4u ? grants_small : grants_large) = r.bus_totals.grants;
  }
  // The checksum reads split into ceil(64/4)=16 vs 1 grants per packet; the
  // CPU's incremental 4-byte writes are DMA-independent above 4 bytes.
  EXPECT_GT(grants_small, grants_large + 2 * 10);
}

TEST(ProdCons, ConsumerWorkScalesWithProducerLatency) {
  // Slower producer (more bytes) => more timer ticks between END_COMPs =>
  // more consumer iterations. Count BYTE_DONE occurrences via the
  // environment hook.
  auto count_byte_done = [](int bytes) {
    ProdConsSystem sys({.num_packets = 6, .bytes_per_packet = bytes,
                        .tick_period = 32, .start_gap = 2});
    core::CoEstimator est(&sys.network(), {});
    sys.configure(est);
    est.prepare();
    std::uint64_t count = 0;
    est.set_environment_hook(
        [&](const sim::EventOccurrence& o, sim::EventQueue&) {
          if (o.event == sys.byte_done_event()) ++count;
        });
    est.run(sys.stimulus(40000));
    return count;
  };
  const auto fast = count_byte_done(8);
  const auto slow = count_byte_done(48);
  EXPECT_GT(slow, fast);
}

TEST(ProdCons, AllPacketsProduceEndComp) {
  ProdConsSystem sys({.num_packets = 5, .bytes_per_packet = 10,
                      .tick_period = 64, .start_gap = 2});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  std::uint64_t end_comps = 0;
  const auto end_comp = sys.network().event_id("END_COMP");
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == end_comp) ++end_comps;
      });
  const auto r = est.run(sys.stimulus(30000));
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(end_comps, 5u);
}

TEST(ProdCons, ResetClearsTheWholePipeline) {
  ProdConsSystem sys({.num_packets = 3, .bytes_per_packet = 8});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  sim::Stimulus stim = sys.stimulus(5000);
  stim.add(2500, sys.network().event_id("RESET"));
  const auto r = est.run(stim);
  EXPECT_FALSE(r.truncated);  // reset must not wedge the system
  // Producer variables back to init if reset arrived after the work drained.
  const auto& st = est.process_state(sys.producer());
  EXPECT_EQ(st.vars[0], 0);  // PKTS
}

TEST(Dashboard, BeltAlarmFiresAfterFiveSecondsUnbelted) {
  DashboardSystem sys({.frames = 20});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  std::vector<sim::SimTime> alarm_on, alarm_off;
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == sys.alarm_on_event()) alarm_on.push_back(o.time);
      });
  est.run(sys.stimulus());
  // Key on at t=1, belt fastened in frame 8, 1s tick each frame -> the
  // alarm fires once (at tick 5) and is cleared by the belt.
  ASSERT_EQ(alarm_on.size(), 1u);
}

TEST(Dashboard, FuelWarningFiresOnceWhenLevelDrains) {
  DashboardSystem sys({.frames = 40});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  int warnings = 0;
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == sys.fuel_low_event()) ++warnings;
      });
  est.run(sys.stimulus());
  EXPECT_EQ(warnings, 1);  // warn-once latch
}

TEST(Dashboard, CruiseEmitsThrottleOnlyWhileEngaged) {
  DashboardSystem sys({.frames = 30});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  const auto throttle = sys.network().event_id("THROTTLE");
  const auto set_ev = sys.network().event_id("CRUISE_SET");
  const auto off_ev = sys.network().event_id("CRUISE_OFF");
  sim::SimTime set_t = 0, off_t = 0;
  std::vector<sim::SimTime> throttle_t;
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == throttle) throttle_t.push_back(o.time);
        if (o.event == set_ev) set_t = o.time;
        if (o.event == off_ev) off_t = o.time;
      });
  est.run(sys.stimulus());
  ASSERT_FALSE(throttle_t.empty());
  for (const auto t : throttle_t) {
    EXPECT_GT(t, set_t);
    // Allow the one control computation already in flight at disengage.
    EXPECT_LT(t, off_t + 3000);
  }
}

TEST(Dashboard, OdometerAdvancesWithDistance) {
  DashboardSystem sys({.frames = 40});
  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();
  est.run(sys.stimulus());
  const auto& odo_state = est.process_state(sys.odometer());
  EXPECT_GT(odo_state.vars[1], 0);  // ODO ticks accumulated
}

TEST(Dashboard, AllAccelerationModesAgreeOnFunction) {
  for (const auto accel :
       {core::Acceleration::kCaching, core::Acceleration::kMacroModel,
        core::Acceleration::kSampling}) {
    DashboardSystem sys({.frames = 15});
    core::CoEstimatorConfig cfg;
    cfg.accel = accel;
    core::CoEstimator est(&sys.network(), cfg);
    sys.configure(est);
    est.prepare();
    int warnings = 0;
    est.set_environment_hook(
        [&](const sim::EventOccurrence& o, sim::EventQueue&) {
          if (o.event == sys.fuel_low_event()) ++warnings;
        });
    const auto r = est.run(sys.stimulus());
    EXPECT_FALSE(r.truncated);
    EXPECT_GT(r.total_energy, 0.0);
  }
}

}  // namespace
}  // namespace socpower::systems
