// Table 2: speedup and accuracy of software power macro-modeling on the
// TCP/IP subsystem, swept over the bus DMA block size.
//
// Paper values:
//   DMA  orig E (mJ)  orig CPU(s)  mm E (mJ)  mm CPU(s)  speedup  err %
//    2     0.54        8051.52       0.72       92.44      87.1    32.9
//    4     0.44        4023.36       0.56       63.46      63.4    27.4
//    8     0.39        2080.77       0.48       48.73      42.7    23.7
//   16     0.36        1398.49       0.44       41.08      34.0    21.6
//   32     0.35         852.25       0.42       37.71      22.6    20.4
//   64     0.34         680.78       0.41       36.02      18.9    19.6
// Macro-modeling over-estimates (additive model, measurement-harness
// residuals, no pipeline overlap across macro-operations), with the error
// shrinking as the DMA size grows (fewer per-block software transitions).
#include <cstdio>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "Software power macro-modeling: speedup and accuracy (TCP/IP)",
      "Table 2, Section 5.2");

  TextTable t({"DMA", "orig E (mJ)", "orig CPU (s)", "mm E (mJ)",
               "mm CPU (s)", "speedup", "error %", "paper err %",
               "paper speedup"});
  const double paper_err[] = {32.9, 27.4, 23.7, 21.6, 20.4, 19.6};
  const double paper_sp[] = {87.1, 63.4, 42.7, 34.0, 22.6, 18.9};

  bool always_over = true;
  bool err_decreasing = true;
  double prev_err = 1e9;
  double min_sp = 1e9, max_sp = 0;
  int i = 0;
  for (const unsigned dma : bench::kTableDmaSizes) {
    systems::TcpIpSystem sys(bench::table_workload(dma));
    core::CoEstimator est(&sys.network(), bench::table_config());
    sys.configure(est);
    est.prepare();
    const auto orig = bench::run_mode(sys, est, core::Acceleration::kNone);
    const auto mm =
        bench::run_mode(sys, est, core::Acceleration::kMacroModel);
    const double sp = orig.wall_seconds / mm.wall_seconds;
    const double err =
        100.0 * (mm.total_energy - orig.total_energy) / orig.total_energy;
    always_over = always_over && err > 0;
    err_decreasing = err_decreasing && err <= prev_err + 0.3;
    prev_err = err;
    min_sp = std::min(min_sp, sp);
    max_sp = std::max(max_sp, sp);
    t.add_row({std::to_string(dma),
               TextTable::fixed(to_millijoules(orig.total_energy), 3),
               TextTable::fixed(orig.wall_seconds, 3),
               TextTable::fixed(to_millijoules(mm.total_energy), 3),
               TextTable::fixed(mm.wall_seconds, 3),
               TextTable::fixed(sp, 1), TextTable::fixed(err, 1),
               TextTable::fixed(paper_err[i], 1),
               TextTable::fixed(paper_sp[i], 1)});
    ++i;
  }
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nAs in the paper: the macro-model is conservative (always\n"
      "over-estimates, because each macro-operation is characterized\n"
      "standalone with its harness and no cross-operation overlap), the\n"
      "error decreases with the DMA size (the per-block software handling,\n"
      "whose count scales as 1/DMA, carries the highest relative\n"
      "overestimate), and the speedup exceeds the caching technique's\n"
      "(Table 1) because the behavioral model is annotated up front — no\n"
      "per-transition estimator synchronization remains at all.\n");
  std::printf("measured speedup span: %.1fx .. %.1fx (paper: 18.9x .. 87.1x)\n",
              min_sp, max_sp);
  const bool shape_ok = always_over && err_decreasing && min_sp > 2.0 &&
                        prev_err > 5.0 && prev_err < 60.0;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
