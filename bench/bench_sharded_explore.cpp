// Distributed co-estimation: process-sharded design-space exploration and
// the out-of-process hardware estimator backends (E17).
//
// Part 1 times the same 8-point exploration as bench_parallel_explore,
// serial vs sharded over forked workers. Outcomes must be bit-identical —
// the shards feed the exact serial reduction — so the speedup is free
// accuracy-wise, like every other acceleration in this repo.
//
// Part 2 measures what the wire protocol costs when it is NOT amortized
// over whole design points: a single co-estimation run with the hardware
// estimators behind a forked worker (hw_remote) vs in-process. This is the
// per-RPC overhead ceiling; chunked eager draining keeps it bounded.
//
// Worker count comes from argv[1] or $SOCPOWER_DIST_WORKERS (default 4).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "dist/wire.hpp"
#include "util/env.hpp"

using namespace socpower;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<core::ExplorationPoint> make_points() {
  // Same shape as bench_parallel_explore: 4 DMA sizes x 2 priority orders.
  std::vector<core::ExplorationPoint> pts;
  const int prios[2][3] = {{3, 2, 1}, {1, 2, 3}};
  for (const unsigned dma : {4u, 16u, 64u, 128u}) {
    for (const auto& pr : prios) {
      auto make_run = [=](core::Acceleration accel) {
        return [=]() {
          systems::TcpIpParams p;
          p.num_packets = 6;
          p.packet_bytes = 128;
          p.packet_gap = 30;
          p.dma_block_size = dma;
          p.prio_create = pr[0];
          p.prio_ipcheck = pr[1];
          p.prio_checksum = pr[2];
          p.ip_check_in_hw = true;
          systems::TcpIpSystem sys(p);
          core::CoEstimatorConfig cfg;
          cfg.bus.line_cap_f = 10e-9;
          cfg.accel = accel;
          cfg.sync_spin = 200'000;  // model the per-invocation IPC round-trip
          core::CoEstimator est(&sys.network(), cfg);
          sys.configure(est);
          est.prepare();
          return est.run(sys.stimulus());
        };
      };
      char label[48];
      std::snprintf(label, sizeof label, "dma=%u prio=%d/%d/%d", dma, pr[0],
                    pr[1], pr[2]);
      pts.push_back({label, make_run(core::Acceleration::kCaching),
                     make_run(core::Acceleration::kNone)});
    }
  }
  return pts;
}

bool outcomes_identical(const core::ExplorationOutcome& a,
                        const core::ExplorationOutcome& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].label != b.ranked[i].label) return false;
    if (a.ranked[i].coarse_energy != b.ranked[i].coarse_energy) return false;
    if (a.ranked[i].exact_energy != b.ranked[i].exact_energy) return false;
    if (a.ranked[i].coarse_rank != b.ranked[i].coarse_rank) return false;
  }
  return a.winner_confirmed == b.winner_confirmed;
}

core::RunResults run_once(bool remote) {
  systems::TcpIpParams p;
  p.num_packets = 8;
  p.packet_bytes = 128;
  p.ip_check_in_hw = true;
  systems::TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  cfg.hw_remote = remote;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  return est.run(sys.stimulus());
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Distributed co-estimation: sharded exploration and remote HW workers",
      "process-level scaling; sharded outcomes must stay bit-identical");

  if (!dist::supported()) {
    std::printf("fork/socketpair unavailable on this platform; nothing to "
                "measure\n\nSHAPE CHECK: PASS\n");
    return 0;
  }

  unsigned max_workers =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
               : static_cast<unsigned>(
                     socpower::util::env_int("SOCPOWER_DIST_WORKERS", 4));
  if (max_workers < 2) max_workers = 2;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, sweeping up to %u worker processes\n\n",
              hw, max_workers);

  // ---- sharded two-phase exploration --------------------------------------
  const auto points = make_points();
  std::printf("exploration: %zu points, verify_top=3, caching coarse pass\n",
              points.size());

  double t0 = now_seconds();
  const auto serial = core::explore(points, /*verify_top=*/3);
  const double serial_s = now_seconds() - t0;

  TextTable t({"workers", "seconds", "speedup", "energies"});
  t.add_row(
      {"1 (serial)", TextTable::fixed(serial_s, 3), "1.00x", "reference"});

  bool all_identical = true;
  double best_speedup = 1.0;
  std::vector<unsigned> sweep;
  for (unsigned n = 2; n <= max_workers; n *= 2) sweep.push_back(n);
  if (sweep.empty() || sweep.back() != max_workers)
    sweep.push_back(max_workers);
  for (const unsigned n : sweep) {
    t0 = now_seconds();
    const auto sharded =
        core::explore_sharded(points, /*verify_top=*/3, {.workers = n});
    const double sharded_s = now_seconds() - t0;
    const bool same = outcomes_identical(serial, sharded);
    all_identical = all_identical && same;
    const double speedup = serial_s / sharded_s;
    best_speedup = std::max(best_speedup, speedup);
    char sp[16];
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    t.add_row({std::to_string(n), TextTable::fixed(sharded_s, 3), sp,
               same ? "bit-identical" : "MISMATCH"});
  }
  std::printf("%s", t.render().c_str());

  // ---- remote hardware estimator overhead ---------------------------------
  std::printf("\nremote HW estimator workers (hw_remote, one full run):\n");
  t0 = now_seconds();
  const auto inproc = run_once(/*remote=*/false);
  const double inproc_s = now_seconds() - t0;
  t0 = now_seconds();
  const auto remote = run_once(/*remote=*/true);
  const double remote_s = now_seconds() - t0;
  const bool remote_same =
      inproc.total_energy == remote.total_energy &&
      inproc.hw_energy == remote.hw_energy &&
      inproc.process_energy == remote.process_energy &&
      inproc.gate_sim_cycles == remote.gate_sim_cycles;
  all_identical = all_identical && remote_same;
  const double overhead = remote_s / inproc_s;
  std::printf("  in-process %.3fs, remote %.3fs (%.2fx overhead), totals %s\n",
              inproc_s, remote_s, overhead,
              remote_same ? "bit-identical" : "MISMATCH");

  // ---- verdict -------------------------------------------------------------
  // Energy equality is the hard requirement everywhere. The wall-clock gate
  // only applies where the hardware can express it: with >= 4 hardware
  // threads a 4-worker, 8-point sharded sweep must beat serial by >= 1.5x
  // (fork + IPC cost some of what threads get for free).
  bool shape_ok = all_identical;
  if (hw >= 4 && max_workers >= 4) {
    const bool fast_enough = best_speedup >= 1.5;
    std::printf("\nspeedup gate (>=1.50x at >=4 workers): %.2fx -> %s\n",
                best_speedup, fast_enough ? "ok" : "TOO SLOW");
    shape_ok = shape_ok && fast_enough;
  } else {
    std::printf(
        "\nspeedup gate skipped: %u hardware thread(s) cannot express a "
        "parallel speedup (energy equality still enforced)\n",
        hw);
  }

  bench::BenchJson json("sharded_explore");
  json.metric("points", static_cast<double>(points.size()))
      .metric("max_workers", max_workers)
      .metric("explore_serial_s", serial_s)
      .metric("explore_best_speedup", best_speedup)
      .metric("remote_overhead_x", overhead)
      .metric("bit_identical", all_identical ? 1.0 : 0.0);
  json.write();

  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
