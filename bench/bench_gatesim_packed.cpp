// Bit-parallel gate evaluation: 64 stimulus patterns per uint64_t word.
//
// Two measurements over comb-heavy and FSMD netlists:
//
//  1. Raw evaluation throughput (the gated number): the scalar level-order
//     sweep (force inputs + settle()) vs the packed word sweep
//     (evaluate_packed(64)) over the same random pattern set. Both sides
//     evaluate every gate of the netlist per pass; the packed side amortizes
//     one pass over 64 patterns, so an optimized build must show at least
//     4x pattern throughput. Functional outputs must match per pattern.
//
//  2. End-to-end billed stepping (informational): step() vs step_packed()
//     over one consecutive trajectory, register lanes seeded from a
//     pre-recorded scalar reference. Per-lane energies, toggles and output
//     words must be bit-identical to the scalar cycles; the speedup is
//     smaller than (1) because the per-lane billing walk stays scalar.
//
// Patterns per workload come from argv[1] or $SOCPOWER_GATESIM_PACKED_STEPS
// (default 16384, rounded up to a multiple of 64).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hw/gatesim.hpp"
#include "hw/netlist.hpp"
#include "hwsyn/rtl.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

using namespace socpower;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A pattern workload: a netlist plus its input-word staging layout. Patterns
// are drawn per input word from a fixed-seed Rng, so every run of every mode
// evaluates the same stimulus.
struct Workload {
  const char* name = "";
  hw::Netlist nl;
  std::vector<hwsyn::Word> input_words;
  unsigned out_width = 0;  // bits read back for the functional check
};

/// Pure combinational 32-bit ALU-ish mixer: multiplier + adder chains with
/// mux steering. No registers — every evaluated gate is datapath, the shape
/// where bit-parallel evaluation pays the most.
Workload make_comb_alu32() {
  Workload w;
  w.name = "comb_alu32";
  hwsyn::RtlBuilder rtl(&w.nl);
  const unsigned kW = 32;
  const hwsyn::Word a = rtl.input_word("a", kW);
  const hwsyn::Word b = rtl.input_word("b", kW);
  const hwsyn::Word c = rtl.input_word("c", 8);
  w.input_words = {a, b, c};

  const hwsyn::Word m = rtl.mul(rtl.word_and(a, b), rtl.word_or(a, b));
  const hwsyn::Word s0 = rtl.add(m, rtl.word_xor(a, rtl.shl_const(b, 3)));
  const hwsyn::Word s1 = rtl.sub(s0, rtl.mux(c[0], a, b));
  const hwsyn::Word s2 = rtl.word_xor(s1, rtl.mux(c[1], m, s0));
  const hwsyn::Word s3 = rtl.add(rtl.mux(c[2], s2, s1),
                                 rtl.word_not(rtl.mux(c[3], s0, a)));
  w.out_width = kW;
  for (unsigned i = 0; i < kW; ++i) w.nl.mark_output(s3[i], "out");
  return w;
}

/// Deeper 24-bit combinational mix with two multipliers: more levels, more
/// gates per pattern (the per-pass fixed costs amortize differently).
Workload make_comb_mix24() {
  Workload w;
  w.name = "comb_mix24";
  hwsyn::RtlBuilder rtl(&w.nl);
  const unsigned kW = 24;
  const hwsyn::Word a = rtl.input_word("a", kW);
  const hwsyn::Word b = rtl.input_word("b", kW);
  w.input_words = {a, b};

  const hwsyn::Word m0 = rtl.mul(a, rtl.word_xor(a, b));
  const hwsyn::Word m1 = rtl.mul(rtl.word_or(a, b), rtl.add(a, b));
  const hwsyn::Word s = rtl.add(rtl.word_xor(m0, m1), rtl.sub(m0, b));
  const hwsyn::Word t = rtl.mux(s[0], rtl.neg(s), rtl.word_not(m1));
  w.out_width = kW;
  for (unsigned i = 0; i < kW; ++i) w.nl.mark_output(t[i], "out");
  return w;
}

/// FSMD for the end-to-end chain comparison: 4-bit counter steering a 16-bit
/// datapath with two pipeline registers (the reaction-cache bench's shape).
Workload make_counter_datapath() {
  Workload w;
  w.name = "counter_datapath";
  hwsyn::RtlBuilder rtl(&w.nl);
  const unsigned kW = 16;
  const hwsyn::Word a = rtl.input_word("a", kW);
  const hwsyn::Word b = rtl.input_word("b", kW);
  w.input_words = {a, b};

  const hwsyn::Word ctr = rtl.reg_word(0, 4);
  rtl.connect_reg(ctr, rtl.add(ctr, rtl.constant(1, 4)));
  const hwsyn::Word p1 = rtl.reg_word(0, kW);
  rtl.connect_reg(p1, rtl.word_xor(a, rtl.shl_const(b, 1)));
  const hwsyn::Word p2 = rtl.reg_word(0, kW);
  rtl.connect_reg(p2, rtl.add(a, b));

  const hwsyn::Word s0 = rtl.add(p1, p2);
  const hwsyn::Word s1 = rtl.sub(rtl.word_or(a, p2), rtl.word_and(b, p1));
  const hwsyn::Word s2 = rtl.mux(ctr[0], s0, s1);
  const hwsyn::Word s3 = rtl.word_xor(rtl.mul(s2, rtl.constant(3, kW)),
                                      rtl.mux(ctr[1], p1, b));
  const hwsyn::Word s4 = rtl.add(rtl.mux(ctr[2], s3, s0),
                                 rtl.mux(ctr[3], s1, p2));
  w.out_width = kW;
  for (unsigned i = 0; i < kW; ++i) w.nl.mark_output(s4[i], "out");
  return w;
}

/// Fixed-seed stimulus: patterns[p][word] is the value driven on input word
/// `word` for pattern p (also cycle p in the chain comparison).
std::vector<std::vector<std::uint64_t>> make_patterns(const Workload& w,
                                                      unsigned n,
                                                      std::uint64_t stream) {
  Rng rng(Rng::for_stream(0xB17Bu, stream));
  std::vector<std::vector<std::uint64_t>> out(n);
  for (auto& pat : out) {
    pat.reserve(w.input_words.size());
    for (const hwsyn::Word& word : w.input_words) {
      const unsigned width = static_cast<unsigned>(word.size());
      const std::uint64_t mask =
          width >= 64 ? ~0ull : (1ull << width) - 1;
      pat.push_back(rng.next() & mask);
    }
  }
  return out;
}

// ---- part 1: raw evaluation throughput (scalar settle vs packed sweep) ----

double time_scalar_eval(const Workload& w,
                        const std::vector<std::vector<std::uint64_t>>& pats,
                        std::vector<std::uint64_t>* outputs) {
  hw::GateSim sim(&w.nl);
  const auto& pis = w.nl.primary_inputs();
  outputs->clear();
  outputs->reserve(pats.size());
  const double t0 = now_seconds();
  for (const auto& pat : pats) {
    std::size_t base = 0;
    for (std::size_t word = 0; word < w.input_words.size(); ++word) {
      const unsigned width =
          static_cast<unsigned>(w.input_words[word].size());
      for (unsigned bit = 0; bit < width; ++bit)
        sim.force_net(pis[base + bit], (pat[word] >> bit) & 1u);
      base += width;
    }
    sim.settle();
    outputs->push_back(sim.read_word(0, w.out_width));
  }
  return now_seconds() - t0;
}

double time_packed_eval(const Workload& w,
                        const std::vector<std::vector<std::uint64_t>>& pats,
                        std::vector<std::uint64_t>* outputs) {
  hw::GateSim sim(&w.nl);
  outputs->clear();
  outputs->reserve(pats.size());
  const double t0 = now_seconds();
  for (std::size_t base = 0; base < pats.size();
       base += hw::GateSim::kMaxLanes) {
    const unsigned n = static_cast<unsigned>(std::min<std::size_t>(
        hw::GateSim::kMaxLanes, pats.size() - base));
    sim.begin_packed_stage();
    for (unsigned l = 0; l < n; ++l) {
      const auto& pat = pats[base + l];
      std::size_t first = 0;
      for (std::size_t word = 0; word < w.input_words.size(); ++word) {
        const unsigned width =
            static_cast<unsigned>(w.input_words[word].size());
        sim.stage_packed_input_word(first, pat[word], width, l);
        first += width;
      }
    }
    sim.evaluate_packed(n);
    for (unsigned l = 0; l < n; ++l)
      outputs->push_back(sim.read_word_lane(0, w.out_width, l));
  }
  return now_seconds() - t0;
}

// ---- part 2: end-to-end billed stepping (step vs step_packed) -------------

struct ChainReference {
  std::vector<std::uint64_t> pre_q;    // per cycle: packed pre-edge Q bits
  std::vector<hw::CycleResult> cycle;  // per cycle: scalar billing
  std::vector<std::uint64_t> outputs;  // per cycle: output word
  Joules total_energy = 0.0;
};

void stage_scalar_inputs(hw::GateSim& sim, const Workload& w,
                         const std::vector<std::uint64_t>& pat) {
  std::size_t base = 0;
  for (std::size_t word = 0; word < w.input_words.size(); ++word) {
    const unsigned width = static_cast<unsigned>(w.input_words[word].size());
    sim.set_input_word(base, pat[word], width);
    base += width;
  }
}

ChainReference record_chain(const Workload& w,
                            const std::vector<std::vector<std::uint64_t>>& pats) {
  ChainReference ref;
  hw::GateSim sim(&w.nl);
  const auto& dffs = w.nl.dffs();
  for (const auto& pat : pats) {
    std::uint64_t q = 0;
    for (std::size_t d = 0; d < dffs.size(); ++d)
      if (sim.net_value(dffs[d].q)) q |= 1ull << d;
    ref.pre_q.push_back(q);
    stage_scalar_inputs(sim, w, pat);
    ref.cycle.push_back(sim.step());
    ref.outputs.push_back(sim.read_word(0, w.out_width));
  }
  ref.total_energy = sim.total_energy();
  return ref;
}

double time_scalar_chain(const Workload& w,
                         const std::vector<std::vector<std::uint64_t>>& pats) {
  hw::GateSim sim(&w.nl);
  const double t0 = now_seconds();
  for (const auto& pat : pats) {
    stage_scalar_inputs(sim, w, pat);
    (void)sim.step();
  }
  return now_seconds() - t0;
}

/// Runs the packed chain; when `check` is given, verifies every lane against
/// the reference (exact double equality — bit identity is the contract).
double time_packed_chain(const Workload& w,
                         const std::vector<std::vector<std::uint64_t>>& pats,
                         const ChainReference* check, bool* ok) {
  hw::GateSim sim(&w.nl);
  const std::size_t n_dffs = w.nl.dffs().size();
  std::vector<hw::CycleResult> per_lane(hw::GateSim::kMaxLanes);
  if (ok) *ok = true;
  const double t0 = now_seconds();
  for (std::size_t base = 0; base < pats.size();
       base += hw::GateSim::kMaxLanes) {
    const unsigned n = static_cast<unsigned>(std::min<std::size_t>(
        hw::GateSim::kMaxLanes, pats.size() - base));
    sim.begin_packed_stage();
    for (unsigned l = 0; l < n; ++l) {
      const auto& pat = pats[base + l];
      std::size_t first = 0;
      for (std::size_t word = 0; word < w.input_words.size(); ++word) {
        const unsigned width =
            static_cast<unsigned>(w.input_words[word].size());
        sim.stage_packed_input_word(first, pat[word], width, l);
        first += width;
      }
      // Register lanes come from the recorded scalar trajectory — the
      // behavioral pre-states in the estimator's real flush path.
      const std::uint64_t q = check ? check->pre_q[base + l] : 0;
      if (check)
        for (std::size_t d = 0; d < n_dffs; ++d)
          sim.seed_packed_dff(d, l, (q >> d) & 1u);
    }
    if (!sim.step_packed(n, per_lane.data())) {
      if (ok) *ok = false;
      return now_seconds() - t0;
    }
    if (check && ok)
      for (unsigned l = 0; l < n; ++l) {
        const hw::CycleResult& want = check->cycle[base + l];
        *ok = *ok && per_lane[l].energy == want.energy &&
              per_lane[l].toggles == want.toggles &&
              sim.read_word_lane(0, w.out_width, l) ==
                  check->outputs[base + l];
      }
  }
  if (check && ok)
    *ok = *ok && sim.total_energy() == check->total_energy &&
          sim.cycles_simulated() == pats.size();
  return now_seconds() - t0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Bit-parallel gate simulation: 64 stimulus patterns per word",
      "engineering speedup; packed results must stay bit-identical");

  unsigned steps =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
               : static_cast<unsigned>(
                     util::env_int("SOCPOWER_GATESIM_PACKED_STEPS", 16384));
  if (steps < 256) steps = 256;
  steps = (steps + 63u) & ~63u;  // whole packed passes
  std::printf("patterns per workload: %u (best of 5 reps)\n\n", steps);

  bench::BenchJson json("gatesim_packed");
  json.metric("patterns", steps);

  // Part 1: raw evaluation throughput. This is what the >=4x gate measures:
  // the same level-order sweep, 1 pattern per pass vs 64 per pass.
  Workload evals[] = {make_comb_alu32(), make_comb_mix24()};
  TextTable t({"workload", "gates", "scalar kpat/s", "packed kpat/s",
               "speedup", "results"});
  bool all_identical = true;
  double worst_eval_speedup = 1e30;
  std::uint64_t stream = 0;
  for (Workload& w : evals) {
    const std::string verr = w.nl.validate();
    if (!verr.empty()) {
      std::fprintf(stderr, "%s: %s\n", w.name, verr.c_str());
      return 1;
    }
    const auto pats = make_patterns(w, steps, stream++);
    std::vector<std::uint64_t> scalar_out, packed_out;
    double ts = 1e30, tp = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      ts = std::min(ts, time_scalar_eval(w, pats, &scalar_out));
      tp = std::min(tp, time_packed_eval(w, pats, &packed_out));
    }
    const bool same = scalar_out == packed_out;
    all_identical = all_identical && same;
    const double speedup = ts / tp;
    worst_eval_speedup = std::min(worst_eval_speedup, speedup);
    char sp[16];
    std::snprintf(sp, sizeof sp, "%.1fx", speedup);
    t.add_row({w.name, std::to_string(w.nl.gate_count()),
               TextTable::fixed(steps / ts / 1e3, 1),
               TextTable::fixed(steps / tp / 1e3, 1), sp,
               same ? "match" : "MISMATCH"});
    json.metric(std::string("eval_speedup_") + w.name, speedup);
  }
  std::printf("%s", t.render().c_str());
  json.metric("eval_speedup_min", worst_eval_speedup);

  // Part 2: end-to-end billed stepping along one trajectory. The billing
  // walk stays scalar per lane, so this speedup is structurally smaller —
  // reported for context, gated only on bit identity.
  Workload chain = make_counter_datapath();
  {
    const std::string verr = chain.nl.validate();
    if (!verr.empty()) {
      std::fprintf(stderr, "%s: %s\n", chain.name, verr.c_str());
      return 1;
    }
  }
  const auto chain_pats = make_patterns(chain, steps, 99);
  const ChainReference ref = record_chain(chain, chain_pats);
  bool chain_identical = false;
  (void)time_packed_chain(chain, chain_pats, &ref, &chain_identical);
  double ts = 1e30, tp = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    ts = std::min(ts, time_scalar_chain(chain, chain_pats));
    bool ok = true;
    tp = std::min(tp, time_packed_chain(chain, chain_pats, &ref, &ok));
    chain_identical = chain_identical && ok;
  }
  all_identical = all_identical && chain_identical;
  const double chain_speedup = ts / tp;
  std::printf(
      "\nend-to-end chain (%s, %u cycles): step %.1f kcyc/s, step_packed "
      "%.1f kcyc/s, %.2fx, %s\n",
      chain.name, steps, steps / ts / 1e3, steps / tp / 1e3, chain_speedup,
      chain_identical ? "bit-identical" : "MISMATCH");
  json.metric("chain_speedup", chain_speedup);
  json.metric("bit_identical", all_identical ? 1.0 : 0.0);

  // Functional/bit identity is the hard requirement everywhere. The
  // throughput gate only runs where the toolchain can express it: an
  // unoptimized build measures debug codegen, not the fast path.
  bool shape_ok = all_identical;
#if defined(__OPTIMIZE__)
  const bool fast_enough = worst_eval_speedup >= 4.0;
  std::printf(
      "\neval throughput gate (>=4.0x on every workload): worst %.1fx -> "
      "%s\n",
      worst_eval_speedup, fast_enough ? "ok" : "TOO SLOW");
  shape_ok = shape_ok && fast_enough;
#else
  std::printf(
      "\neval throughput gate skipped: unoptimized build (identity still "
      "enforced; worst observed %.1fx)\n",
      worst_eval_speedup);
#endif

  json.write();
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
