// Analytical estimator tier: calibrated McPAT-style unit models replacing
// gate-level simulation for large hardware blocks, and the three-tier
// exploration funnel built on them.
//
// Three sections, three claims:
//
//  1. Accuracy — on the paper's two benchmark systems (TCP/IP NIC and the
//     producer/timer/consumer of Figure 1) a calibrated analytical run's
//     dynamic energy stays within 15 % of the gate-level backend.
//  2. Sweep throughput — a >= 10^4-point design sweep evaluated with ONE
//     warm analytical estimator runs >= 20x faster than the same sweep on
//     one warm gate-level estimator. Both sides reuse their prepared
//     estimator and differ only in how a hardware reaction is priced, so
//     the ratio is the pure algorithmic gain of model evaluation over gate
//     simulation. The gate-level side is measured on a sampled subset and
//     extrapolated linearly (logged below); run cost per point is constant
//     by construction, every point simulates the same cycle budget +- the
//     swept word count.
//  3. Funnel fidelity — ExploreOptions::analytical_prefilter keeps the
//     winner and the verified ranking bit-identical to the classic
//     two-phase exploration.
//
// The sweep system is deliberately hardware-heavy: a 48-lane DSP engine
// (~50k gates of shift/xor/add datapath) fed by a small software driver.
// This is the regime the analytical tier exists for — the NIC's units are
// 1-5k gates and cap the end-to-end win near 4x, while wide datapaths make
// gate-level pricing the dominant cost (see docs/INTERNALS.md).
//
// Sweep points come from $SOCPOWER_ANALYTICAL_POINTS (default 10000; the
// optimized-build gate requires >= 10000).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "hwsyn/synth.hpp"
#include "systems/builder.hpp"
#include "systems/prodcons.hpp"
#include "systems/tcpip.hpp"
#include "util/env.hpp"

using namespace socpower;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double rel_err_pct(double approx, double exact) {
  return exact != 0.0 ? 100.0 * std::fabs(approx - exact) / std::fabs(exact)
                      : 0.0;
}

// ---------------------------------------------------------------------------
// The sweep system: driver (SW) -> engine (HW, `lanes` parallel 32-bit
// shift/xor/add lanes updated every cycle). One GO(words) from the
// environment makes the driver run a short marshalling loop and hand the
// block to the engine, which grinds `words` self-triggered reactions.
// ---------------------------------------------------------------------------
struct DspSystem {
  cfsm::Network net;
  cfsm::CfsmId driver = cfsm::kNoCfsm;
  cfsm::CfsmId engine = cfsm::kNoCfsm;
  cfsm::EventId ev_go, ev_drv_step, ev_cmd, ev_eng_step, ev_done;

  explicit DspSystem(int lanes) {
    ev_go = net.declare_event("GO");
    ev_drv_step = net.declare_event("DRV_STEP");
    ev_cmd = net.declare_event("ENG_CMD");
    ev_eng_step = net.declare_event("ENG_STEP");
    ev_done = net.declare_event("ENG_DONE");

    {
      cfsm::Cfsm& c = net.add_cfsm("driver");
      c.add_input(ev_go);
      c.add_input(ev_drv_step);
      c.add_input(ev_done);
      c.add_output(ev_drv_step);
      c.add_output(ev_cmd);
      const auto CNT = c.add_var("CNT");
      const auto WORDS = c.add_var("WORDS");
      const auto SUM = c.add_var("SUM");
      systems::Behavior b{c};
      // GO(words): 8 marshalling steps, then hand off to the engine.
      const auto n_go = b.test(
          b.present(ev_go),
          b.assign(WORDS, b.val(ev_go),
                   b.assign(CNT, b.k(8), b.emit0(ev_drv_step, b.end()))),
          b.end());
      const auto n_step = b.test(
          b.present(ev_drv_step),
          b.assign(SUM, b.add(b.v(SUM), b.v(CNT)),
                   b.assign(CNT, b.sub(b.v(CNT), b.k(1)),
                            b.test(b.gt(b.v(CNT), b.k(0)),
                                   b.emit0(ev_drv_step, b.end()),
                                   b.emit(ev_cmd, b.v(WORDS), b.end())))),
          n_go);
      b.root(n_step);
      driver = c.id();
    }
    {
      cfsm::Cfsm& c = net.add_cfsm("engine");
      c.add_input(ev_cmd);
      c.add_input(ev_eng_step);
      c.add_output(ev_eng_step);
      c.add_output(ev_done);
      const auto CNT = c.add_var("CNT");
      const auto SEED = c.add_var("SEED");
      std::vector<cfsm::VarId> acc(static_cast<std::size_t>(lanes));
      for (int i = 0; i < lanes; ++i)
        acc[static_cast<std::size_t>(i)] = c.add_var("ACC" + std::to_string(i));
      systems::Behavior b{c};

      // One engine cycle: advance the seed, update every lane with two
      // adders and three xors (shifts by constants are free wiring).
      auto lane_updates = [&](systems::Behavior::N tail) {
        systems::Behavior::N n = tail;
        for (int i = lanes - 1; i >= 0; --i) {
          const auto a = acc[static_cast<std::size_t>(i)];
          const auto nb = acc[static_cast<std::size_t>((i + 1) % lanes)];
          const auto mixed =
              b.add(b.add(b.bxor(b.shl(b.v(a), 1), b.shr(b.v(a), 3)),
                          b.bxor(b.v(SEED), b.v(nb))),
                    b.bxor(b.shr(b.v(nb), 5), b.v(SEED)));
          n = b.assign(a, mixed, n);
        }
        return b.assign(
            SEED,
            b.bxor(b.bxor(b.shl(b.v(SEED), 13), b.shr(b.v(SEED), 17)),
                   b.add(b.v(SEED), b.k(0x9e37))),
            n);
      };
      const auto n_tail = b.assign(
          CNT, b.sub(b.v(CNT), b.k(1)),
          b.test(b.gt(b.v(CNT), b.k(1)), b.emit0(ev_eng_step, b.end()),
                 b.emit0(ev_done, b.end())));
      const auto n_step =
          b.test(b.present(ev_eng_step), lane_updates(n_tail), b.end());
      const auto n_cmd = b.test(
          b.present(ev_cmd),
          b.assign(CNT, b.val(ev_cmd),
                   b.assign(SEED, b.bxor(b.v(SEED), b.val(ev_cmd)),
                            b.emit0(ev_eng_step, b.end()))),
          n_step);
      b.root(n_cmd);
      engine = c.id();
    }
  }

  void configure(core::CoEstimator& est) const {
    est.map_sw(driver, /*rtos_priority=*/1);
    est.map_hw(engine);
  }

  [[nodiscard]] sim::Stimulus stimulus(int blocks, int words) const {
    sim::Stimulus s;
    for (int i = 0; i < blocks; ++i)
      s.add(1 + static_cast<sim::SimTime>(i) * 4096, ev_go, words);
    return s;
  }
};

// Per-run workload of one sweep point. Both tiers evaluate the identical
// stimulus, so energies are comparable bit for bit on the gate side.
struct SweepPoint {
  int blocks = 2;
  int words = 24;
};

SweepPoint sweep_point(std::size_t i) {
  // Deterministic 2-axis grid walked in index order: block count 2-3,
  // engine words 12-34 (even).
  SweepPoint p;
  p.blocks = 2 + static_cast<int>(i % 2);
  p.words = 12 + static_cast<int>((i / 2) % 12) * 2;
  return p;
}

// ---------------------------------------------------------------------------
// Section 1: accuracy on the paper's systems.
// ---------------------------------------------------------------------------
struct AccuracyResult {
  double err_pct = 0.0;
  double leakage_share_pct = 0.0;
};

template <typename MakeEstimator, typename Stim>
AccuracyResult measure_accuracy(MakeEstimator make, const Stim& st) {
  // Gate-level ground truth, then a calibrated analytical re-run of the
  // same stimulus: run 1 interleaves gate-level calibration, run 2 prices
  // every fitted unit from the model (units short of samples keep using the
  // gate simulator — their contribution is exact, which only helps).
  auto gate = make(/*analytical=*/false);
  const core::RunResults g = gate->run(st);
  auto ana = make(/*analytical=*/true);
  ana->run(st);  // calibration pass
  const core::RunResults a = ana->run(st);
  AccuracyResult r;
  const double dyn = a.total_energy - a.leakage_energy;
  r.err_pct = rel_err_pct(dyn, g.total_energy);
  r.leakage_share_pct =
      a.total_energy > 0.0 ? 100.0 * a.leakage_energy / a.total_energy : 0.0;
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Analytical estimator tier: accuracy, sweep throughput, funnel "
      "fidelity",
      "Section 5 estimator hierarchy; McPAT-style unit models");

  std::size_t points = static_cast<std::size_t>(
      util::env_int("SOCPOWER_ANALYTICAL_POINTS", 10'000));
  points = std::max<std::size_t>(points, 480);

  bench::BenchJson json("analytical_explore");
  bool shape_ok = true;

  // ---- Section 1: accuracy on the paper's benchmark systems ---------------
  systems::TcpIpParams tp;
  tp.num_packets = 8;
  tp.packet_bytes = 128;
  tp.ip_check_in_hw = true;
  systems::TcpIpSystem tcpip(tp);
  const AccuracyResult acc_tcpip = measure_accuracy(
      [&](bool analytical) {
        core::CoEstimatorConfig cfg;
        cfg.accel = core::Acceleration::kMacroModel;
        if (analytical) {
          cfg.estimators.hw_gate = "hw.analytical";
          cfg.hw_analytical_calibration_vectors = 64;
        }
        auto est = std::make_unique<core::CoEstimator>(&tcpip.network(), cfg);
        tcpip.configure(*est);
        est->prepare();
        return est;
      },
      tcpip.stimulus());

  systems::ProdConsParams pp;
  pp.num_packets = 4;
  pp.bytes_per_packet = 16;
  pp.tick_period = 24;
  pp.start_gap = 2;
  pp.consumer_base_iterations = 52;
  systems::ProdConsSystem prodcons(pp);
  const AccuracyResult acc_prodcons = measure_accuracy(
      [&](bool analytical) {
        core::CoEstimatorConfig cfg;
        cfg.accel = core::Acceleration::kMacroModel;
        if (analytical) {
          cfg.estimators.hw_gate = "hw.analytical";
          cfg.hw_analytical_calibration_vectors = 64;
        }
        auto est =
            std::make_unique<core::CoEstimator>(&prodcons.network(), cfg);
        prodcons.configure(*est);
        est->prepare();
        return est;
      },
      prodcons.stimulus(/*horizon=*/40'000));

  TextTable acc_table({"system", "analytical dyn err", "static share"});
  char buf1[32], buf2[32];
  std::snprintf(buf1, sizeof buf1, "%.2f%%", acc_tcpip.err_pct);
  std::snprintf(buf2, sizeof buf2, "%.2f%%", acc_tcpip.leakage_share_pct);
  acc_table.add_row({"tcpip NIC", buf1, buf2});
  std::snprintf(buf1, sizeof buf1, "%.2f%%", acc_prodcons.err_pct);
  std::snprintf(buf2, sizeof buf2, "%.2f%%", acc_prodcons.leakage_share_pct);
  acc_table.add_row({"prodcons", buf1, buf2});
  std::printf("%s", acc_table.render().c_str());

  const bool accurate =
      acc_tcpip.err_pct <= 15.0 && acc_prodcons.err_pct <= 15.0;
  std::printf("accuracy gate (<=15%% dynamic-energy error vs gate level): %s\n",
              accurate ? "ok" : "FAIL");
  shape_ok = shape_ok && accurate;
  json.metric("err_pct_tcpip", acc_tcpip.err_pct);
  json.metric("err_pct_prodcons", acc_prodcons.err_pct);

  // ---- Section 2: the 10^4-point sweep ------------------------------------
  DspSystem dsp(/*lanes=*/48);

  core::CoEstimatorConfig gate_cfg;
  gate_cfg.accel = core::Acceleration::kMacroModel;
  gate_cfg.hw_reaction_cache = false;  // chaotic lane state: zero-hit traffic
  core::CoEstimatorConfig ana_cfg = gate_cfg;
  ana_cfg.estimators.hw_gate = "hw.analytical";
  ana_cfg.hw_analytical_calibration_vectors = 32;

  core::CoEstimator gate_est(&dsp.net, gate_cfg);
  dsp.configure(gate_est);
  gate_est.prepare();
  core::CoEstimator ana_est(&dsp.net, ana_cfg);
  dsp.configure(ana_est);
  ana_est.prepare();
  const std::size_t engine_gates =
      hwsyn::synthesize_cfsm(dsp.net.cfsm(dsp.engine)).netlist->gate_count();
  std::printf("\nDSP engine synthesizes to %zu gates\n", engine_gates);

  // Calibration pass: one mid-sized block fits the engine model (68 samples
  // against a 32-vector target); everything after runs model-only.
  const double t_cal0 = now_seconds();
  ana_est.run(dsp.stimulus(2, 34));
  const double calib_seconds = now_seconds() - t_cal0;

  // Warm analytical sweep over every point.
  std::size_t best_idx = 0;
  double best_energy = 0.0;
  std::uint64_t sweep_gate_cycles = 0;
  std::vector<double> ana_energy(points, 0.0);
  const double t_ana0 = now_seconds();
  for (std::size_t i = 0; i < points; ++i) {
    const SweepPoint p = sweep_point(i);
    const core::RunResults r = ana_est.run(dsp.stimulus(p.blocks, p.words));
    ana_energy[i] = r.total_energy - r.leakage_energy;
    sweep_gate_cycles += r.gate_sim_cycles;
    if (i == 0 || r.total_energy < best_energy) {
      best_energy = r.total_energy;
      best_idx = i;
    }
  }
  const double ana_sweep_s = now_seconds() - t_ana0;

  // Gate-level coarse baseline: identical warm-estimator loop, sampled at a
  // fixed stride and extrapolated (the per-point cost is constant by
  // construction). The sampled points double as the sweep's accuracy probe.
  const std::size_t samples = 24;
  const std::size_t stride = std::max<std::size_t>(points / samples, 1);
  std::size_t sampled = 0;
  double gate_sampled_s = 0.0, err_dsp_max = 0.0;
  const double t_gate0 = now_seconds();
  for (std::size_t i = 0; i < points; i += stride) {
    const SweepPoint p = sweep_point(i);
    const core::RunResults r = gate_est.run(dsp.stimulus(p.blocks, p.words));
    ++sampled;
    err_dsp_max =
        std::max(err_dsp_max, rel_err_pct(ana_energy[i], r.total_energy));
  }
  gate_sampled_s = now_seconds() - t_gate0;
  const double gate_per_point_s =
      sampled > 0 ? gate_sampled_s / static_cast<double>(sampled) : 0.0;
  const double gate_sweep_est_s =
      gate_per_point_s * static_cast<double>(points);
  const double speedup =
      ana_sweep_s > 0.0 ? gate_sweep_est_s / ana_sweep_s : 0.0;

  const SweepPoint best = sweep_point(best_idx);
  std::printf(
      "\nsweep: %zu points on the 48-lane DSP engine\n"
      "  analytical (one warm estimator): %.2f s  (%.3f ms/point, "
      "calibration %.1f ms, %llu residual gate cycles)\n"
      "  gate level (one warm estimator): measured %zu of %zu points in "
      "%.2f s, extrapolated %.1f s for the full sweep\n"
      "  speedup %.1fx   max dynamic-energy error on sampled points %.2f%%\n"
      "  best point: #%zu (blocks=%d words=%d) %.4g J\n",
      points, ana_sweep_s, 1e3 * ana_sweep_s / static_cast<double>(points),
      1e3 * calib_seconds, static_cast<unsigned long long>(sweep_gate_cycles),
      sampled, points, gate_sampled_s, gate_sweep_est_s, speedup, err_dsp_max,
      best_idx, best.blocks, best.words, best_energy);

  const bool sweep_model_only = sweep_gate_cycles == 0;
  const bool sweep_accurate = err_dsp_max <= 15.0;
  std::printf("sweep gates: model-only %s, error <=15%% %s\n",
              sweep_model_only ? "ok" : "FAIL (gate cycles in warm sweep)",
              sweep_accurate ? "ok" : "FAIL");
  shape_ok = shape_ok && sweep_model_only && sweep_accurate;
  json.metric("points", static_cast<double>(points));
  json.metric("sampled_gate_points", static_cast<double>(sampled));
  json.metric("analytical_sweep_s", ana_sweep_s);
  json.metric("gate_sweep_est_s", gate_sweep_est_s);
  json.metric("speedup_x", speedup);
  json.metric("err_pct_dsp_max", err_dsp_max);
  json.metric("engine_gates", static_cast<double>(engine_gates));

  // ---- Section 3: three-tier funnel fidelity ------------------------------
  std::vector<core::ExplorationPoint> dma_points;
  for (const unsigned dma : {2u, 4u, 8u, 16u, 32u, 64u, 96u, 128u}) {
    auto make_run = [dma](core::Acceleration accel, bool analytical) {
      return [dma, accel, analytical]() {
        systems::TcpIpParams p;
        p.num_packets = 2;
        p.packet_bytes = 32;
        p.dma_block_size = dma;
        p.ip_check_in_hw = true;
        systems::TcpIpSystem sys(p);
        core::CoEstimatorConfig cfg;
        cfg.accel = accel;
        if (analytical) {
          cfg.estimators.hw_gate = "hw.analytical";
          cfg.hw_analytical_calibration_vectors = 8;
        }
        core::CoEstimator est(&sys.network(), cfg);
        sys.configure(est);
        est.prepare();
        return est.run(sys.stimulus());
      };
    };
    dma_points.push_back({"dma=" + std::to_string(dma),
                          make_run(core::Acceleration::kMacroModel, false),
                          make_run(core::Acceleration::kNone, false),
                          make_run(core::Acceleration::kMacroModel, true)});
  }
  const auto full = core::explore(dma_points, /*verify_top=*/3, {.threads = 1});
  const auto funneled = core::explore(
      dma_points, /*verify_top=*/3,
      {.threads = 1, .analytical_prefilter = 5});
  bool identical = funneled.prefilter_kept == 5 &&
                   funneled.best().label == full.best().label &&
                   funneled.winner_confirmed == full.winner_confirmed;
  for (std::size_t i = 0; identical && i < 3; ++i) {
    const auto& f = full.ranked[i];
    const auto& p = funneled.ranked[i];
    identical = f.label == p.label && f.coarse_energy == p.coarse_energy &&
                f.exact_energy == p.exact_energy;
  }
  std::printf(
      "\nfunnel: 8 DMA points, prefilter keeps 5, verify top 3 "
      "(analytical phase %.1f ms)\n"
      "  winner %s, verified ranking vs classic two-phase: %s\n",
      1e3 * funneled.analytical_seconds, funneled.best().label.c_str(),
      identical ? "bit-identical" : "MISMATCH");
  shape_ok = shape_ok && identical;
  json.metric("prefilter_kept", static_cast<double>(funneled.prefilter_kept));
  json.metric("prefilter_identical", identical ? 1.0 : 0.0);

  // Wall-clock gates only on optimized builds; the deterministic gates
  // (accuracy, model-only sweep, funnel bit-identity) always apply.
#if defined(__OPTIMIZE__)
  const bool fast_enough = speedup >= 20.0 && points >= 10'000;
  std::printf(
      "\nspeedup gate (>=20x on a >=10^4-point sweep): %.1fx over %zu "
      "points -> %s\n",
      speedup, points, fast_enough ? "ok" : "TOO SLOW");
  shape_ok = shape_ok && fast_enough;
#else
  std::printf(
      "\nspeedup gate skipped: unoptimized build (observed %.1fx; "
      "deterministic gates still enforced)\n",
      speedup);
#endif

  json.write();
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
