// HW fast path: gate-level reaction throughput of the raw levelized sweep
// vs the reaction cache, over FSMD-shaped netlists driven with cyclic
// stimulus — the shape of hardware traffic the co-estimator produces
// (CFSMs revisiting a small set of (register-state, input-vector) pairs).
// The cache must be bit-identical in energy, toggles and cycle count — the
// speedup is pure engineering gain — and on an optimized build it must
// deliver at least 1.3x on every workload.
//
// Reactions per workload come from argv[1] or $SOCPOWER_HW_RCACHE_STEPS
// (default 20000).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hw/gatesim.hpp"
#include "hw/netlist.hpp"
#include "hw/reaction_cache.hpp"
#include "hwsyn/rtl.hpp"
#include "util/env.hpp"

using namespace socpower;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A reaction workload: a netlist whose register state recurs (so the cache
// can serve hits, exactly as CFSM control states do) plus a cyclic input
// schedule. The joint (state, stimulus-phase) orbit is finite, so after one
// orbit of warmup the cached run replays everything.
struct Workload {
  const char* name;
  hw::Netlist nl;
  std::vector<std::size_t> n_inputs_per_word;  // staging layout
  std::vector<hwsyn::Word> input_words;
  std::vector<std::vector<std::uint32_t>> schedule;  // per-cycle word values
};

/// Counter-sequenced datapath: a 4-bit control counter (period 16) steering
/// a 16-bit arithmetic datapath over two input words, with two pipeline
/// registers latching input-derived values. State = (counter, pipes); the
/// pipes follow the stimulus cycle, so the whole orbit has period
/// lcm(16, schedule) and the steady state is pure cache hits.
Workload make_counter_datapath() {
  Workload w;
  w.name = "counter_datapath";
  hwsyn::RtlBuilder rtl(&w.nl);
  const unsigned kW = 16;
  const hwsyn::Word a = rtl.input_word("a", kW);
  const hwsyn::Word b = rtl.input_word("b", kW);
  w.input_words = {a, b};

  const hwsyn::Word ctr = rtl.reg_word(0, 4);
  rtl.connect_reg(ctr, rtl.add(ctr, rtl.constant(1, 4)));

  // Pipeline registers latch functions of the inputs alone (period = the
  // stimulus period, never an accumulator — accumulating state would never
  // recur and would defeat any memoization, cached or not).
  const hwsyn::Word p1 = rtl.reg_word(0, kW);
  rtl.connect_reg(p1, rtl.word_xor(a, rtl.shl_const(b, 1)));
  const hwsyn::Word p2 = rtl.reg_word(0, kW);
  rtl.connect_reg(p2, rtl.add(a, b));

  // Datapath: a few chained operators steered by counter bits.
  const hwsyn::Word s0 = rtl.add(p1, p2);
  const hwsyn::Word s1 = rtl.sub(rtl.word_or(a, p2), rtl.word_and(b, p1));
  const hwsyn::Word s2 = rtl.mux(ctr[0], s0, s1);
  const hwsyn::Word s3 = rtl.word_xor(rtl.mul(s2, rtl.constant(3, kW)),
                                      rtl.mux(ctr[1], p1, b));
  const hwsyn::Word s4 = rtl.add(rtl.mux(ctr[2], s3, s0),
                                 rtl.mux(ctr[3], s1, p2));
  for (unsigned i = 0; i < kW; ++i) w.nl.mark_output(s4[i], "out");

  for (int i = 0; i < 24; ++i)  // period-24 schedule, coprime-ish with 16
    w.schedule.push_back({static_cast<std::uint32_t>(0x9e37u * i) & 0xFFFFu,
                          static_cast<std::uint32_t>(0x85ebu * (i + 5)) &
                              0xFFFFu});
  return w;
}

/// Wider mixed datapath with an 8-state one-hot-ish sequencer: more gates
/// per reaction (deeper sweep on a miss) and a shorter stimulus period.
Workload make_pipeline_mix() {
  Workload w;
  w.name = "pipeline_mix";
  hwsyn::RtlBuilder rtl(&w.nl);
  const unsigned kW = 24;
  const hwsyn::Word a = rtl.input_word("a", kW);
  const hwsyn::Word b = rtl.input_word("b", kW);
  const hwsyn::Word c = rtl.input_word("c", 8);
  w.input_words = {a, b, c};

  const hwsyn::Word seq = rtl.reg_word(1, 3);
  rtl.connect_reg(seq, rtl.add(seq, rtl.constant(1, 3)));
  const hwsyn::Word p1 = rtl.reg_word(0, kW);
  rtl.connect_reg(p1, rtl.sub(a, b));

  const hwsyn::Word m = rtl.mul(rtl.word_and(a, p1), rtl.word_or(b, p1));
  const hwsyn::Word s = rtl.add(m, rtl.mux(seq[0], a, rtl.word_not(b)));
  const hwsyn::Word t = rtl.word_xor(s, rtl.mux(seq[1], p1, m));
  const hwsyn::Word u =
      rtl.mux(rtl.eq(rtl.from_bit(seq[2], 8), c), rtl.neg(t), rtl.add(t, p1));
  for (unsigned i = 0; i < kW; ++i) w.nl.mark_output(u[i], "out");

  for (int i = 0; i < 12; ++i)
    w.schedule.push_back({static_cast<std::uint32_t>(0x45d9u * i) & 0xFFFFFFu,
                          static_cast<std::uint32_t>(0x27d4u * (i + 3)) &
                              0xFFFFFFu,
                          static_cast<std::uint32_t>(i * 37u) & 0xFFu});
  return w;
}

struct Measured {
  double seconds = 0.0;
  Joules energy = 0.0;
  std::uint64_t toggles = 0;
  std::uint64_t cycles = 0;
  hw::ReactionCacheStats stats;
};

Measured run_workload(const Workload& w, bool cached, unsigned steps) {
  hw::GateSim sim(&w.nl);
  hw::ReactionCacheConfig cc;
  cc.enabled = cached;
  hw::ReactionCache cache(&sim, cc);
  Measured m;
  const double t0 = now_seconds();
  for (unsigned i = 0; i < steps; ++i) {
    const auto& vec = w.schedule[i % w.schedule.size()];
    std::size_t base = 0;
    for (std::size_t word = 0; word < w.input_words.size(); ++word) {
      const unsigned width =
          static_cast<unsigned>(w.input_words[word].size());
      sim.set_input_word(base, vec[word], width);
      base += width;
    }
    const hw::CycleResult r = cache.step();
    m.energy += r.energy;
    m.toggles += r.toggles;
  }
  m.seconds = now_seconds() - t0;
  m.cycles = sim.cycles_simulated();
  m.stats = cache.stats();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "HW reaction throughput: levelized sweep vs reaction cache",
      "engineering speedup; results must stay bit-identical");

  unsigned steps =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
               : static_cast<unsigned>(
                     util::env_int("SOCPOWER_HW_RCACHE_STEPS", 20000));
  if (steps < 200) steps = 200;
  std::printf("reactions per workload: %u (best of 5 reps)\n\n", steps);

  Workload workloads[] = {make_counter_datapath(), make_pipeline_mix()};

  TextTable t({"workload", "gates", "raw kreact/s", "cached kreact/s",
               "speedup", "hit rate", "results"});
  bool all_identical = true;
  double worst_speedup = 1e30;
  bench::BenchJson json("hw_reaction_cache");
  json.metric("reactions", steps);

  for (Workload& w : workloads) {
    const std::string verr = w.nl.validate();
    if (!verr.empty()) {
      std::fprintf(stderr, "%s: %s\n", w.name, verr.c_str());
      return 1;
    }
    Measured off, on;
    for (int rep = 0; rep < 5; ++rep) {  // best-of-5 to shed scheduler noise
      const Measured o = run_workload(w, false, steps);
      const Measured c = run_workload(w, true, steps);
      if (rep == 0 || o.seconds < off.seconds) off = o;
      if (rep == 0 || c.seconds < on.seconds) on = c;
    }
    const bool same = off.energy == on.energy && off.toggles == on.toggles &&
                      off.cycles == on.cycles;
    all_identical = all_identical && same;
    const double speedup = off.seconds / on.seconds;
    worst_speedup = std::min(worst_speedup, speedup);
    const double served = static_cast<double>(on.stats.hits) +
                          static_cast<double>(on.stats.misses);
    char sp[16], hr[16];
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    std::snprintf(hr, sizeof hr, "%.1f%%",
                  served > 0 ? 100.0 * static_cast<double>(on.stats.hits) /
                                   served
                             : 0.0);
    t.add_row({w.name, std::to_string(w.nl.gate_count()),
               TextTable::fixed(steps / off.seconds / 1e3, 1),
               TextTable::fixed(steps / on.seconds / 1e3, 1), sp, hr,
               same ? "bit-identical" : "MISMATCH"});
    json.metric(std::string("speedup_") + w.name, speedup);
    json.metric(std::string("hit_rate_") + w.name,
                served > 0 ? static_cast<double>(on.stats.hits) / served
                           : 0.0);
  }
  std::printf("%s", t.render().c_str());
  json.metric("speedup_min", worst_speedup);
  json.metric("bit_identical", all_identical ? 1.0 : 0.0);

  // Bit-identity is the hard requirement everywhere. The wall-clock gate
  // only runs where the toolchain can express it: an unoptimized build
  // measures the debug codegen, not the fast path.
  bool shape_ok = all_identical;
#if defined(__OPTIMIZE__)
  const bool fast_enough = worst_speedup >= 1.3;
  std::printf(
      "\nspeedup gate (>=1.30x on every workload): worst %.2fx -> %s\n",
      worst_speedup, fast_enough ? "ok" : "TOO SLOW");
  shape_ok = shape_ok && fast_enough;
#else
  std::printf(
      "\nspeedup gate skipped: unoptimized build (bit-identity still "
      "enforced; worst observed %.2fx)\n",
      worst_speedup);
#endif

  json.write();
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
