// Figure 6: relative accuracy ("tracking fidelity") of macro-modeling —
// scatter of macro-modeled system energy vs. the unaccelerated estimate for
// the DMA-size variants. The paper's claims: the ranking of the design
// points is preserved, and the relation is close to linear.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "Relative accuracy of macro-modeling across DMA variants",
      "Figure 6, Section 5.2");

  std::vector<double> orig_e, mm_e;
  TextTable t({"DMA", "orig energy (nJ)", "macromodel energy (nJ)",
               "ratio"});
  for (const unsigned dma : bench::kTableDmaSizes) {
    systems::TcpIpSystem sys(bench::table_workload(dma));
    auto cfg = bench::table_config();
    cfg.sync_spin = 0;  // accuracy study: no need to model IPC time here
    core::CoEstimator est(&sys.network(), cfg);
    sys.configure(est);
    est.prepare();
    const auto orig = bench::run_mode(sys, est, core::Acceleration::kNone);
    const auto mm =
        bench::run_mode(sys, est, core::Acceleration::kMacroModel);
    orig_e.push_back(to_nanojoules(orig.total_energy));
    mm_e.push_back(to_nanojoules(mm.total_energy));
    t.add_row({std::to_string(dma), TextTable::fixed(orig_e.back(), 0),
               TextTable::fixed(mm_e.back(), 0),
               TextTable::fixed(mm_e.back() / orig_e.back(), 3)});
  }
  std::printf("%s", t.render().c_str());

  // ASCII scatter in the style of Figure 6 (x: original, y: macro-model).
  const double xmin = *std::min_element(orig_e.begin(), orig_e.end());
  const double xmax = *std::max_element(orig_e.begin(), orig_e.end());
  const double ymin = *std::min_element(mm_e.begin(), mm_e.end());
  const double ymax = *std::max_element(mm_e.begin(), mm_e.end());
  const int W = 56, H = 16;
  std::vector<std::string> grid(H, std::string(W, ' '));
  for (std::size_t i = 0; i < orig_e.size(); ++i) {
    const int x = static_cast<int>((orig_e[i] - xmin) / (xmax - xmin) * (W - 1));
    const int y = static_cast<int>((mm_e[i] - ymin) / (ymax - ymin) * (H - 1));
    grid[static_cast<std::size_t>(H - 1 - y)][static_cast<std::size_t>(x)] =
        '*';
  }
  std::printf("\nmacromodel energy (y) vs original energy (x):\n");
  for (const auto& row : grid) std::printf("  |%s\n", row.c_str());
  std::printf("  +%s\n", std::string(W, '-').c_str());

  const bool ranking = same_ranking(orig_e.data(), mm_e.data(), orig_e.size());
  const double r = pearson_correlation(orig_e.data(), mm_e.data(),
                                       orig_e.size());
  std::printf("\nranking preserved across all %zu DMA variants: %s "
              "(paper: preserved)\n",
              orig_e.size(), ranking ? "YES" : "NO");
  std::printf("Pearson correlation: %.5f (paper: visually linear)\n", r);

  const bool shape_ok = ranking && r > 0.995;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
