// Section 4.3: statistical sampling / K-memory dynamic sequence compaction.
// The paper describes the technique without a dedicated table; this bench
// charts its accuracy/efficiency tradeoff: simulated fraction, energy error
// and CPU-time speedup as functions of the keep ratio and buffer size K.
#include <cstdio>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "K-memory dynamic sequence compaction: accuracy vs. efficiency",
      "Section 4.3 (no table in the paper; ablation)");

  systems::TcpIpParams p;
  p.num_packets = 80;
  p.packet_bytes = 128;
  p.dma_block_size = 8;
  auto cfg = bench::table_config();
  // Use the DSP-style data-dependent instruction power model: per-path
  // energies then genuinely vary, so extrapolating the skipped transitions
  // carries real (bounded) error — with the data-independent SPARClite
  // model the extrapolation would be exact and the tradeoff invisible.
  cfg.data_nj_per_toggle = 0.6;

  // Reference run.
  systems::TcpIpSystem ref_sys(p);
  core::CoEstimator ref(&ref_sys.network(), cfg);
  ref_sys.configure(ref);
  ref.prepare();
  const auto orig = ref.run(ref_sys.stimulus());
  std::printf("reference: E=%s, CPU=%.3fs, ISS calls=%llu\n\n",
              format_energy(orig.total_energy).c_str(), orig.wall_seconds,
              static_cast<unsigned long long>(orig.iss_invocations));

  TextTable t({"K", "keep ratio", "ISS calls", "simulated %", "energy err %",
               "speedup", "function OK"});
  bool all_ok = true;
  double best_speedup = 0;
  double err_at_strongest = 0;
  for (const std::size_t k : {32u, 64u, 128u}) {
    for (const double ratio : {0.5, 0.25, 0.125}) {
      systems::TcpIpSystem sys(p);
      core::CoEstimator est(&sys.network(), cfg);
      sys.configure(est);
      est.prepare();
      est.config().accel = core::Acceleration::kSampling;
      est.config().sampling = {.k_memory = k, .keep_ratio = ratio,
                               .window = 4, .min_length = 8};
      const auto r = est.run(sys.stimulus());
      const double err = percent_error(r.total_energy, orig.total_energy);
      const double sp = orig.wall_seconds / r.wall_seconds;
      const bool fn_ok = sys.packets_ok(est) == p.num_packets;
      all_ok = all_ok && fn_ok && err < 12.0;
      if (sp > best_speedup) {
        best_speedup = sp;
        err_at_strongest = err;
      }
      t.add_row({std::to_string(k), TextTable::fixed(ratio, 3),
                 std::to_string(r.iss_invocations),
                 TextTable::fixed(100.0 * static_cast<double>(r.iss_invocations) /
                                      static_cast<double>(orig.iss_invocations),
                                  1),
                 TextTable::fixed(err, 2), TextTable::fixed(sp, 1),
                 fn_ok ? "yes" : "NO"});
    }
  }
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nThe compacted instruction/vector stream preserves single-symbol and\n"
      "lag-one pair statistics (Section 4.3), so the extrapolated energy\n"
      "tracks the full simulation while most lower-level invocations are\n"
      "skipped. Function is never affected: the behavioral model remains\n"
      "the golden executor. strongest point: %.1fx at %.2f%% error.\n",
      best_speedup, err_at_strongest);

  const bool shape_ok = all_ok && best_speedup > 2.0;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
