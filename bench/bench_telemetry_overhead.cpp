// Telemetry overhead: the co-estimation pipeline with telemetry disabled,
// with counters enabled, and with counters + tracing, reported per layer
// (full TCP/IP co-estimation and the bare ISS invocation loop).
//
// Gate (optimized builds only): counters-ENABLED wall clock within 2% of
// disabled on both layers. The disabled path does a strict subset of the
// enabled path's work — the same relaxed-load branches, none of the atomic
// adds — so passing the enabled-vs-disabled gate bounds the disabled-path
// cost over an uninstrumented build a fortiori. Energies must stay
// bit-identical across all three modes in every build type: telemetry
// observes, it must never steer.
//
// No sync spins are configured here, unlike the paper-table benches: spin
// padding would dilute the telemetry fraction and flatter the gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "iss/assembler.hpp"
#include "iss/iss.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"

using namespace socpower;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class Mode { kDisabled, kCounters, kTrace };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kDisabled: return "disabled";
    case Mode::kCounters: return "counters";
    case Mode::kTrace: return "counters+trace";
  }
  return "?";
}

void apply(Mode m) {
  telemetry::TelemetryConfig cfg;
  cfg.enabled = m != Mode::kDisabled;
  cfg.trace = m == Mode::kTrace;
  telemetry::configure(cfg);
  telemetry::reset();
}

struct Layer {
  double seconds[3] = {0.0, 0.0, 0.0};  // indexed by Mode, best-of-reps
  double check[3] = {0.0, 0.0, 0.0};    // bit-identity witness per mode
};

/// Full co-estimation of the TCP/IP subsystem (caching mode, so the run
/// crosses the energy cache, ISS, gate sim, bus and icache layers).
double run_coest(double* check) {
  systems::TcpIpParams p;
  p.num_packets = 8;
  p.packet_bytes = 64;
  p.packet_gap = 40;
  p.dma_block_size = 16;
  p.ip_check_in_hw = true;
  systems::TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  cfg.accel = core::Acceleration::kCaching;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const double t0 = now_seconds();
  const core::RunResults r = est.run(sys.stimulus());
  const double dt = now_seconds() - t0;
  *check = r.total_energy;
  return dt;
}

/// Bare ISS invocation loop — the hottest instrumented layer; its telemetry
/// is one enabled() check plus per-invocation delta adds.
double run_iss(unsigned runs, double* check) {
  // ~6000 executed instructions per invocation: long enough that the
  // per-invocation telemetry epilogue (one enabled() branch, block-cache
  // stat deltas) is measured against realistic work, short enough that
  // thousands of invocations stay fast. Mind the delay slot: a bare `halt`
  // after the branch would execute every iteration and end the loop.
  static const char* kSrc = R"(
      movi r1, 0
      movi r2, 2000
loop: addi r1, r1, 3
      addi r2, r2, -1
      bne  r2, r0, loop
      nop               ; delay slot
      halt
  )";
  const iss::AsmResult asmres = iss::assemble(kSrc);
  if (!asmres.ok()) {
    std::fprintf(stderr, "asm: %s\n", asmres.error.c_str());
    std::exit(1);
  }
  iss::Iss cpu(iss::InstructionPowerModel::sparclite({}), {});
  cpu.load_program(asmres.program, 0);
  double energy = 0.0;
  const double t0 = now_seconds();
  for (unsigned i = 0; i < runs; ++i) {
    cpu.reset_cpu();
    cpu.set_pc(0);
    const iss::RunResult r = cpu.run();
    if (!r.halted || r.fault) {
      std::fprintf(stderr, "kernel did not halt cleanly\n");
      std::exit(1);
    }
    energy += r.energy;
  }
  const double dt = now_seconds() - t0;
  *check = energy;
  return dt;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Telemetry overhead: disabled vs counters vs counters+trace",
      "engineering gate; disabled path must stay within 2%");

  const int reps =
      argc > 1 ? std::atoi(argv[1])
               : static_cast<int>(util::env_int("SOCPOWER_BENCH_REPS", 5));
  const auto iss_runs = static_cast<unsigned>(
      util::env_int("SOCPOWER_ISS_RUNS", 5000));
  std::printf("best of %d reps; ISS layer: %u invocations\n\n",
              reps, iss_runs);

  constexpr Mode kModes[] = {Mode::kDisabled, Mode::kCounters, Mode::kTrace};
  Layer coest, issl;
  // Modes interleave within each rep so slow drift on a busy container hits
  // all three equally; best-of-reps sheds one-sided scheduler spikes.
  for (int rep = 0; rep < std::max(reps, 1); ++rep) {
    for (const Mode m : kModes) {
      const auto mi = static_cast<std::size_t>(m);
      apply(m);
      double check = 0.0;
      const double c = run_coest(&check);
      if (rep == 0 || c < coest.seconds[mi]) coest.seconds[mi] = c;
      coest.check[mi] = check;
      const double s = run_iss(iss_runs, &check);
      if (rep == 0 || s < issl.seconds[mi]) issl.seconds[mi] = s;
      issl.check[mi] = check;
    }
  }
  apply(Mode::kDisabled);

  const struct {
    const char* name;
    const Layer* layer;
  } kLayers[] = {{"tcpip co-estimation", &coest}, {"ISS invocations", &issl}};

  TextTable t({"layer", "mode", "seconds", "vs disabled"});
  bool identical = true;
  double worst_ratio = 0.0;
  for (const auto& [name, layer] : kLayers) {
    const double base = layer->seconds[0];
    for (const Mode m : kModes) {
      const auto mi = static_cast<std::size_t>(m);
      const double ratio = layer->seconds[mi] / base;
      if (m == Mode::kCounters) worst_ratio = std::max(worst_ratio, ratio);
      char rs[16];
      std::snprintf(rs, sizeof rs, "%.3fx", ratio);
      t.add_row({mi == 0 ? name : "", mode_name(m),
                 TextTable::fixed(layer->seconds[mi] * 1e3, 2) + " ms", rs});
      identical = identical && layer->check[mi] == layer->check[0];
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nenergy results across modes: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  bool shape_ok = identical;
#if defined(__OPTIMIZE__)
  const bool cheap = worst_ratio <= 1.02;
  std::printf("overhead gate (counters <=1.02x disabled, both layers): "
              "worst %.3fx -> %s\n",
              worst_ratio, cheap ? "ok" : "TOO SLOW");
  shape_ok = shape_ok && cheap;
#else
  std::printf("overhead gate skipped: unoptimized build (bit-identity still "
              "enforced; worst counters ratio %.3fx)\n",
              worst_ratio);
#endif

  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
