// Figure 1(b): the motivating experiment — separate per-component power
// estimation (driven by timing-independent behavioral traces) vs. power
// co-estimation, on the producer / timer / consumer system.
//
// Paper values:            producer      consumer
//   separate               6.97e-5 J     2.58e-9 J
//   co-estimation          6.97e-5 J     6.75e-9 J   (separate under-
//                                                     estimates by ~62 %)
#include <cstdio>

#include "bench_common.hpp"
#include "systems/prodcons.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "Separate estimation vs. co-estimation (producer/timer/consumer)",
      "Figure 1(b), Section 2");

  systems::ProdConsParams p;
  p.num_packets = 4;
  p.bytes_per_packet = 16;
  p.tick_period = 24;
  p.start_gap = 2;
  p.consumer_base_iterations = 52;
  systems::ProdConsSystem sys(p);

  core::CoEstimator est(&sys.network(), {});
  sys.configure(est);
  est.prepare();

  const sim::SimTime horizon = 40'000;
  const auto co = est.run(sys.stimulus(horizon));
  const auto sep = est.run_separate(sys.stimulus(horizon));

  const auto prod = static_cast<std::size_t>(sys.producer());
  const auto cons = static_cast<std::size_t>(sys.consumer());
  const double under =
      100.0 * (co.process_energy[cons] - sep.process_energy[cons]) /
      co.process_energy[cons];

  TextTable t({"", "producer energy (J)", "consumer energy (J)"});
  t.add_row({"separate", TextTable::num(sep.process_energy[prod]),
             TextTable::num(sep.process_energy[cons])});
  t.add_row({"co-est", TextTable::num(co.process_energy[prod]),
             TextTable::num(co.process_energy[cons])});
  t.add_row({"paper separate", "6.97e-05", "2.58e-09"});
  t.add_row({"paper co-est", "6.97e-05", "6.75e-09"});
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nconsumer under-estimation by separate analysis: %.1f%% "
      "(paper: ~62%%)\n",
      under);
  std::printf(
      "producer estimates agree to %.2f%% (paper: identical), because the\n"
      "producer's computation does not depend on event timing while the\n"
      "consumer's iteration count is TIME - PREV_TIME.\n",
      percent_error(sep.process_energy[prod], co.process_energy[prod]));

  const bool shape_ok = under > 30.0 && under < 90.0 &&
                        percent_error(sep.process_energy[prod],
                                      co.process_energy[prod]) < 5.0;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
