// Mesh contention vs core count, and what ignoring it costs (multicore PR).
//
// Sweeps the multicore scenario family over 1/2/4 cores on both
// interconnects. For each point the workload is co-estimated (interconnect
// stalls and coherence penalties feed back into the schedule) and
// separate-estimated (timing-independent behavioral trace priced after the
// fact); the gap between the two is the paper's co-estimation argument,
// which must WIDEN with the core count: more cores interleave more
// timing-dependent DONE streams through the shared collector, so at >= 2
// cores the separate error must strictly exceed the single-core scenario's.
// On the NoC the per-link telemetry shows where the contention concentrates
// (the links into the memory corner).
//
// Gates: repeated co-estimation runs bit-identical at every point; NoC
// interconnect energy and wait cycles non-zero for >= 2 cores; separate
// error at >= 2 cores strictly above the 1-core error on the same
// interconnect. Headline numbers persist to BENCH_noc_contention.json.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "systems/multicore.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

using namespace socpower;

namespace {

struct Point {
  unsigned cores = 0;
  core::InterconnectKind ic = core::InterconnectKind::kBus;
  core::RunResults co;
  core::RunResults sep;
  double rel_error = 0.0;
};

core::RunResults run(const systems::MulticoreParams& params, bool separate) {
  systems::MulticoreSystem sys(params);
  core::CoEstimator est(&sys.network(), sys.config_template());
  sys.configure(est);
  est.prepare();
  const sim::Stimulus stim = sys.stimulus(8192);
  return separate ? est.run_separate(stim) : est.run(stim);
}

}  // namespace

int main() {
  bench::print_header(
      "NoC contention and the multicore co-estimation gap",
      "separate vs co-estimated energy over 1/2/4 cores, bus and mesh");

  bool shape_ok = true;
  std::vector<Point> points;
  telemetry::set_enabled(true, false);
  for (const core::InterconnectKind ic :
       {core::InterconnectKind::kBus, core::InterconnectKind::kNoc}) {
    for (const unsigned cores : {1u, 2u, 4u}) {
      systems::MulticoreParams mp;
      mp.cores = cores;
      mp.num_packets = 6;
      mp.interconnect = ic;
      Point p;
      p.cores = cores;
      p.ic = ic;
      p.co = run(mp, false);
      p.sep = run(mp, true);
      // Determinism gate: a second co-estimation replays every bit.
      const core::RunResults again = run(mp, false);
      if (again.total_energy != p.co.total_energy ||
          again.end_time != p.co.end_time ||
          again.bus_totals.energy != p.co.bus_totals.energy) {
        std::printf("non-deterministic repeat at cores=%u %s: BAD\n", cores,
                    core::interconnect_name(ic));
        shape_ok = false;
      }
      p.rel_error = std::fabs(p.sep.total_energy - p.co.total_energy) /
                    p.co.total_energy;
      points.push_back(p);
    }
  }
  telemetry::set_enabled(false, false);

  TextTable t({"interconnect", "cores", "co energy (uJ)", "sep energy (uJ)",
               "sep error", "ic wait cyc", "ic energy (nJ)", "invals"});
  for (const Point& p : points) {
    t.add_row({core::interconnect_name(p.ic), std::to_string(p.cores),
               TextTable::fixed(p.co.total_energy * 1e6, 4),
               TextTable::fixed(p.sep.total_energy * 1e6, 4),
               TextTable::fixed(100.0 * p.rel_error, 2) + "%",
               std::to_string(p.co.bus_totals.wait_cycles),
               TextTable::fixed(p.co.bus_totals.energy * 1e9, 3),
               std::to_string(p.co.coherence.invalidations)});
  }
  std::printf("%s", t.render().c_str());

  // Where mesh contention concentrates: the busiest directed links, from
  // the cumulative per-link telemetry of the NoC runs above.
  std::printf("\nbusiest mesh links (cumulative flits over the NoC sweep):\n");
  std::vector<std::pair<std::string, std::uint64_t>> links;
  for (const auto& c : telemetry::registry().snapshot().counters)
    if (c.name.rfind("estimator.bus.noc.link.", 0) == 0 &&
        c.name.find(".flits") != std::string::npos && c.value > 0)
      links.emplace_back(c.name, c.value);
  std::sort(links.begin(), links.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < links.size() && i < 4; ++i)
    std::printf("  %-44s %8llu\n", links[i].first.c_str(),
                static_cast<unsigned long long>(links[i].second));
  if (links.empty()) {
    std::printf("  (no per-link counters recorded: BAD)\n");
    shape_ok = false;
  }

  // Gates. The acceptance criterion asks for *a* >= 2-core scenario whose
  // separate error strictly exceeds the single-core one; at 2 cores the
  // contention can still be in the noise (a bus serves two masters almost
  // without queueing), so the hard gate is on the 4-core point and the
  // 2-core row is informational.
  for (std::size_t base = 0; base < points.size(); base += 3) {
    const Point& one = points[base];  // cores=1 on this interconnect
    for (std::size_t i = 1; i < 3; ++i) {
      const Point& multi = points[base + i];
      const bool wider = multi.rel_error > one.rel_error;
      const bool gated = multi.cores >= 4;
      std::printf("separate-error %s (%s, %u cores > 1 core): %.4f%% vs "
                  "%.4f%% -> %s\n",
                  gated ? "gate" : "info",
                  core::interconnect_name(multi.ic), multi.cores,
                  100.0 * multi.rel_error, 100.0 * one.rel_error,
                  wider ? "ok" : "not wider");
      if (gated) shape_ok = shape_ok && wider;
    }
  }
  for (const Point& p : points) {
    if (p.ic != core::InterconnectKind::kNoc || p.cores < 2) continue;
    if (p.co.bus_totals.energy <= 0.0 || p.co.bus_totals.wait_cycles == 0) {
      std::printf("NoC at %u cores shows no contention (energy=%g waits=%llu)"
                  ": BAD\n",
                  p.cores, p.co.bus_totals.energy,
                  static_cast<unsigned long long>(
                      p.co.bus_totals.wait_cycles));
      shape_ok = false;
    }
  }

  bench::BenchJson json("noc_contention");
  for (const Point& p : points) {
    const std::string tag = std::string(core::interconnect_name(p.ic)) +
                            "_c" + std::to_string(p.cores);
    json.metric(tag + "_sep_error", p.rel_error)
        .metric(tag + "_co_energy_j", p.co.total_energy)
        .metric(tag + "_ic_wait_cycles",
                static_cast<double>(p.co.bus_totals.wait_cycles))
        .metric(tag + "_ic_energy_j", p.co.bus_totals.energy);
  }
  json.write();

  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
