// Ablation: the energy cache's accuracy/efficiency knobs (paper Section
// 4.2: "two user-specified parameters are provided to determine the
// aggressiveness of the caching technique"). With a data-dependent
// (DSP-style) CPU power model, per-path energies vary, so thresh_variance
// trades cache coverage against energy error — the tradeoff the paper
// predicts for processors whose ISS models data dependence.
#include <cstdio>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "Energy-cache aggressiveness: thresh_variance / thresh_iss_calls",
      "Section 4.2 (parameter ablation; no table in the paper)");

  systems::TcpIpParams p;
  p.num_packets = 60;
  p.packet_bytes = 128;
  core::CoEstimatorConfig base;
  base.data_nj_per_toggle = 1.2;  // DSP-style: caching is no longer exact

  systems::TcpIpSystem ref_sys(p);
  core::CoEstimator ref(&ref_sys.network(), base);
  ref_sys.configure(ref);
  ref.prepare();
  const auto orig = ref.run(ref_sys.stimulus());
  std::printf("reference (no acceleration): E=%s, ISS calls=%llu\n\n",
              format_energy(orig.total_energy).c_str(),
              static_cast<unsigned long long>(orig.iss_invocations));

  TextTable t({"thresh_variance", "thresh_iss_calls", "hit rate %",
               "energy err %", "ISS calls"});
  double err_loose = 0, err_tight = 0;
  for (const double tv : {0.0, 1e-6, 1e-4, 1e-2, 1.0}) {
    for (const std::size_t calls : {3u, 10u}) {
      systems::TcpIpSystem sys(p);
      auto cfg = base;
      cfg.accel = core::Acceleration::kCaching;
      cfg.energy_cache.thresh_variance = tv;
      cfg.energy_cache.thresh_iss_calls = calls;
      core::CoEstimator est(&sys.network(), cfg);
      sys.configure(est);
      est.prepare();
      const auto r = est.run(sys.stimulus());
      const double err = percent_error(r.total_energy, orig.total_energy);
      const double hit_rate =
          100.0 * static_cast<double>(r.cache_hits_served) /
          static_cast<double>(r.sw_reactions);
      if (tv == 0.0 && calls == 3) err_tight = err;
      if (tv == 1.0 && calls == 3) err_loose = err;
      t.add_row({TextTable::num(tv), std::to_string(calls),
                 TextTable::fixed(hit_rate, 1), TextTable::fixed(err, 3),
                 std::to_string(r.iss_invocations)});
    }
  }
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nWith thresh_variance = 0 only exactly-repeating paths are served\n"
      "(zero error but low coverage under a data-dependent model); loosening\n"
      "the threshold raises coverage at a bounded, monotone error cost —\n"
      "exactly the aggressiveness dial of Figure 4(c).\n");

  const bool shape_ok = err_tight < 1e-6 && err_loose > err_tight &&
                        err_loose < 10.0;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
