// Ablation: gate-level vs. RT-level hardware power estimation (paper
// Section 3: "the hardware netlist may be represented at the RT-level or
// the gate-level, depending on the accuracy/efficiency requirements").
// Runs the TCP/IP subsystem with the checksum ASIC estimated both ways and
// charts the accuracy/efficiency tradeoff.
#include <cstdio>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "HW estimator choice: gate-level vs. RT-level (checksum ASIC)",
      "Section 3 (design choice ablation; no table in the paper)");

  TextTable t({"estimator", "checksum E (nJ)", "delta %", "gate evals",
               "CPU (s)", "packets OK"});
  double gate_e = 0, rtl_e = 0, gate_s = 0, rtl_s = 0;
  for (const bool rtl : {false, true}) {
    systems::TcpIpParams p;
    p.num_packets = 80;
    p.packet_bytes = 256;
    p.checksum_rtl_estimator = rtl;
    systems::TcpIpSystem sys(p);
    core::CoEstimator est(&sys.network(), {});
    sys.configure(est);
    est.prepare();
    const auto r = est.run(sys.stimulus());
    const double e = to_nanojoules(
        r.process_energy[static_cast<std::size_t>(sys.checksum())]);
    if (rtl) {
      rtl_e = e;
      rtl_s = r.wall_seconds;
    } else {
      gate_e = e;
      gate_s = r.wall_seconds;
    }
    t.add_row({rtl ? "RT-level" : "gate-level", TextTable::fixed(e, 1),
               rtl ? TextTable::fixed(100.0 * (e - gate_e) / gate_e, 1) : "-",
               std::to_string(r.gate_sim_cycles),
               TextTable::fixed(r.wall_seconds, 3),
               std::to_string(sys.packets_ok(est))});
  }
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nThe RT-level macro estimate lands within a factor of ~2 of the\n"
      "gate-level reference while skipping gate evaluation entirely for the\n"
      "block — the easier-to-model/harder-to-model split the paper's\n"
      "heterogeneous estimator plug-in design is built for.\n");
  std::printf("gate-level run: %.3fs; RT-level run: %.3fs\n", gate_s, rtl_s);

  const double ratio = rtl_e / gate_e;
  const bool shape_ok = ratio > 0.33 && ratio < 3.0;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
