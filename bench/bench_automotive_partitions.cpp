// The automotive controller experiment: the abstract demonstrates the
// co-estimation tool on "a TCP/IP Network Interface Card sub-system and an
// automotive controller", and Section 5.2 notes that macro-modeling's
// relative accuracy also held when "attempting to rank several different
// HW/SW partitions". This bench does exactly that on the dashboard
// controller: all 8 partitions of {speedo, odometer, cruise} are
// co-estimated, ranked, and the ranking is re-checked under macro-modeling.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "systems/dashboard.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "Automotive controller: ranking HW/SW partitions, with and without "
      "macro-modeling",
      "Abstract + Section 5.2 (\"rank several different HW/SW partitions\")");

  systems::DashboardParams dp;
  dp.frames = 40;

  std::vector<double> orig_e, mm_e;
  TextTable t({"speedo", "odometer", "cruise", "orig E (uJ)", "mm E (uJ)",
               "latency (kcycles)"});
  for (unsigned mask = 0; mask < 8; ++mask) {
    const systems::DashboardSystem::Partition part{
        .speedo_hw = (mask & 1) != 0,
        .odometer_hw = (mask & 2) != 0,
        .cruise_hw = (mask & 4) != 0,
    };
    systems::DashboardSystem sys(dp);
    core::CoEstimator est(&sys.network(), {});
    sys.configure(est, part);
    est.prepare();
    const auto orig = est.run(sys.stimulus());
    est.config().accel = core::Acceleration::kMacroModel;
    const auto mm = est.run(sys.stimulus());
    orig_e.push_back(to_microjoules(orig.total_energy));
    mm_e.push_back(to_microjoules(mm.total_energy));
    t.add_row({part.speedo_hw ? "HW" : "SW", part.odometer_hw ? "HW" : "SW",
               part.cruise_hw ? "HW" : "SW",
               TextTable::fixed(orig_e.back(), 2),
               TextTable::fixed(mm_e.back(), 2),
               TextTable::fixed(static_cast<double>(orig.end_time) / 1e3,
                                1)});
  }
  std::printf("%s", t.render().c_str());

  const bool ranking = same_ranking(orig_e.data(), mm_e.data(), orig_e.size());
  const double r =
      pearson_correlation(orig_e.data(), mm_e.data(), orig_e.size());
  std::printf(
      "\nmacro-modeling preserves the ranking of all 8 partitions: %s "
      "(Pearson %.4f)\n",
      ranking ? "YES" : "NO", r);
  std::printf(
      "(as in Section 5.2: \"we have obtained similar results ... by\n"
      "attempting to rank several different HW/SW partitions\")\n");

  // Moving the compute tasks into hardware lowers total energy in this
  // technology point (the CPU's instruction overhead dominates the tiny
  // datapaths), and the all-HW partition is also the fastest.
  const bool hw_wins = orig_e[7] < orig_e[0];
  const bool shape_ok = ranking && r > 0.99 && hw_wins;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
