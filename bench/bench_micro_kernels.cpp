// Engineering micro-benchmarks (google-benchmark) for the simulation
// substrates: DE event queue, ISS, gate-level simulator, sequence compactor.
// Not a paper artifact — throughput hygiene for the framework itself.
#include <benchmark/benchmark.h>

#include "cfsm/cfsm.hpp"
#include "core/compactor.hpp"
#include "hw/gatesim.hpp"
#include "hwsyn/rtl.hpp"
#include "iss/assembler.hpp"
#include "iss/iss.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace socpower {
namespace {

void BM_EventQueuePostPop(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      q.post(rng.below(1000), static_cast<cfsm::EventId>(rng.below(8)), 0);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop_instant());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePostPop);

void BM_IssDhrystoneish(benchmark::State& state) {
  const auto prog = iss::assemble(R"(
    movi r4, 0
    movi r5, 1000
    movi r7, 0x400
  loop:
    lw   r8, 0(r7)
    add  r8, r8, r4
    sw   r8, 0(r7)
    andi r9, r4, 7
    slli r10, r9, 2
    addi r4, r4, 1
    bne  r4, r5, loop
    nop
    halt
  )", 0x10);
  iss::Iss cpu(iss::InstructionPowerModel::sparclite(), {});
  cpu.load_program(prog.program, 0x10);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    cpu.reset_cpu();
    cpu.set_pc(0x10);
    const auto r = cpu.run();
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
  state.SetLabel("instructions/s");
}
BENCHMARK(BM_IssDhrystoneish);

void BM_GateSimAdderChurn(benchmark::State& state) {
  hw::Netlist nl;
  hwsyn::RtlBuilder rtl(&nl);
  const auto a = rtl.input_word("a", 32);
  const auto b = rtl.input_word("b", 32);
  const auto acc = rtl.reg_word(0, 32);
  rtl.connect_reg(acc, rtl.add(acc, rtl.add(a, b)));
  hw::GateSim sim(&nl);
  Rng rng(3);
  std::uint64_t evals = 0;
  for (auto _ : state) {
    sim.set_input_word(0, static_cast<std::uint32_t>(rng.next()), 32);
    sim.set_input_word(32, static_cast<std::uint32_t>(rng.next()), 32);
    benchmark::DoNotOptimize(sim.step().energy);
  }
  evals = sim.gates_evaluated();
  state.SetItemsProcessed(static_cast<std::int64_t>(evals));
  state.SetLabel("gate-evals/s");
}
BENCHMARK(BM_GateSimAdderChurn);

void BM_CompactorSelect(benchmark::State& state) {
  core::SequenceCompactor c(
      {.k_memory = 128, .keep_ratio = 0.25, .window = 4, .min_length = 8});
  Rng rng(9);
  std::vector<std::uint32_t> symbols(128);
  for (auto& s : symbols) s = static_cast<std::uint32_t>(rng.below(16));
  for (auto _ : state) benchmark::DoNotOptimize(c.select(symbols));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_CompactorSelect);

}  // namespace
}  // namespace socpower

BENCHMARK_MAIN();
