// ISS fast path: instruction throughput of the reference stepping
// interpreter vs the pre-decoded basic-block cache, over kernels shaped
// like the co-estimator's software transitions (short programs, re-invoked
// many times after reset_cpu). The cache must be bit-identical in energy
// and cycles — the speedup is pure engineering gain — and on an optimized
// build it must deliver at least 1.5x.
//
// Invocations per kernel come from argv[1] or $SOCPOWER_ISS_RUNS
// (default 20000).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "iss/assembler.hpp"
#include "iss/iss.hpp"
#include "util/env.hpp"

using namespace socpower;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Kernel {
  const char* name;
  const char* src;
};

// Kernels in the shape of generated CFSM reaction code: a short prologue,
// a data loop, a tail — dominated by ALU/load/store with regular branches.
const Kernel kKernels[] = {
    {"checksum64",
     R"(      movi r4, 0        ; byte pointer
      movi r6, 0        ; accumulator
      movi r7, 64       ; byte count
loop: lbu  r5, 0(r4)
      add  r6, r6, r5
      addi r4, r4, 1
      bne  r4, r7, loop
      nop               ; delay slot
      sw   r6, 256(r0)
      halt
)"},
    {"memfill32",
     R"(      movi r1, 0
      movi r2, 128      ; fill 32 words
      movi r3, 1023
fill: sw   r3, 512(r1)
      addi r1, r1, 4
      blt  r1, r2, fill
      addi r3, r3, -1   ; delay slot keeps the store value moving
      halt
)"},
    {"alu_mix",
     R"(      movi r1, 77
      movi r2, 13
      movi r8, 0
      movi r9, 24
mix:  add  r3, r1, r2
      xor  r4, r3, r1
      slli r5, r4, 3
      sub  r1, r5, r2
      mul  r6, r3, r2
      srai r7, r6, 2
      addi r8, r8, 1
      bne  r8, r9, mix
      or   r2, r2, r7   ; delay slot
      halt
)"},
};

struct Measured {
  double seconds = 0.0;
  std::uint64_t instructions = 0;
  double energy = 0.0;       // summed run energies (bitwise-comparable)
  std::uint64_t cycles = 0;
};

/// Re-invokes `prog` like the co-estimator does per software transition:
/// reset, point the PC, run to HALT.
Measured run_kernel(const iss::Program& prog, bool cache, unsigned runs) {
  iss::IssConfig cfg;
  cfg.block_cache = cache;
  iss::Iss iss(iss::InstructionPowerModel::sparclite(), cfg);
  iss.load_program(prog, 0);
  Measured m;
  const double t0 = now_seconds();
  for (unsigned i = 0; i < runs; ++i) {
    iss.reset_cpu();
    const iss::RunResult r = iss.run();
    m.instructions += r.instructions;
    m.energy += r.energy;
    m.cycles += r.cycles;
    if (!r.halted || r.fault) {
      std::fprintf(stderr, "kernel did not halt cleanly\n");
      std::exit(1);
    }
  }
  m.seconds = now_seconds() - t0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "ISS throughput: stepping interpreter vs basic-block cache",
      "engineering speedup; results must stay bit-identical");

  unsigned runs =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
               : static_cast<unsigned>(
                     socpower::util::env_int("SOCPOWER_ISS_RUNS", 20000));
  if (runs < 100) runs = 100;
  std::printf("invocations per kernel: %u (best of 5 reps)\n\n", runs);

  TextTable t({"kernel", "interp Mips", "cached Mips", "speedup", "results"});
  bool all_identical = true;
  double worst_speedup = 1e30;
  bench::BenchJson json("iss_throughput");
  json.metric("runs", runs);

  for (const Kernel& k : kKernels) {
    const iss::AsmResult asmres = iss::assemble(k.src);
    if (!asmres.ok()) {
      std::fprintf(stderr, "%s: %s\n", k.name, asmres.error.c_str());
      return 1;
    }
    Measured off, on;
    for (int rep = 0; rep < 5; ++rep) {  // best-of-5 to shed scheduler noise
      const Measured o = run_kernel(asmres.program, false, runs);
      const Measured c = run_kernel(asmres.program, true, runs);
      if (rep == 0 || o.seconds < off.seconds) off = o;
      if (rep == 0 || c.seconds < on.seconds) on = c;
    }
    const bool same = off.energy == on.energy && off.cycles == on.cycles &&
                      off.instructions == on.instructions;
    all_identical = all_identical && same;
    const double mips_off = off.instructions / off.seconds / 1e6;
    const double mips_on = on.instructions / on.seconds / 1e6;
    const double speedup = off.seconds / on.seconds;
    worst_speedup = std::min(worst_speedup, speedup);
    char sp[16];
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    t.add_row({k.name, TextTable::fixed(mips_off, 1),
               TextTable::fixed(mips_on, 1), sp,
               same ? "bit-identical" : "MISMATCH"});
    json.metric(std::string("speedup_") + k.name, speedup);
    json.metric(std::string("cached_mips_") + k.name, mips_on);
  }
  std::printf("%s", t.render().c_str());
  json.metric("speedup_min", worst_speedup);
  json.metric("bit_identical", all_identical ? 1.0 : 0.0);

  // Bit-identity is the hard requirement everywhere. The wall-clock gate
  // only runs where the toolchain can express it: an unoptimized build
  // measures the debug codegen, not the fast path.
  bool shape_ok = all_identical;
#if defined(__OPTIMIZE__)
  const bool fast_enough = worst_speedup >= 1.5;
  std::printf("\nspeedup gate (>=1.50x on every kernel): worst %.2fx -> %s\n",
              worst_speedup, fast_enough ? "ok" : "TOO SLOW");
  shape_ok = shape_ok && fast_enough;
#else
  std::printf(
      "\nspeedup gate skipped: unoptimized build (bit-identity still "
      "enforced; worst observed %.2fx)\n",
      worst_speedup);
#endif

  json.write();
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
