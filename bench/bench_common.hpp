// Shared configuration and helpers for the paper-reproduction benchmark
// binaries. Every experiment prints its table in the paper's row format
// alongside the corresponding published values.
//
// CPU-time calibration: the paper's component estimators are separate
// processes driven over IPC by the simulation master, and the paper names
// that communication/synchronization cost as a dominant contributor to
// co-estimation time. Our estimators are in-process, so the benchmarks model
// the per-invocation round-trip with a deterministic spin (sync_spin), and
// the per-served-transition table management of the caching backplane with a
// smaller spin (cache_hit_spin). Speedup *ratios* are what the experiments
// compare; absolute seconds are machine-specific either way.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/coestimator.hpp"
#include "systems/tcpip.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace socpower::bench {

/// Workload for the Table 1 / Table 2 / Figure 6 sweeps.
inline systems::TcpIpParams table_workload(unsigned dma) {
  systems::TcpIpParams p;
  p.num_packets = 60;
  p.packet_bytes = 128;
  p.packet_gap = 40;
  p.dma_block_size = dma;
  return p;
}

inline core::CoEstimatorConfig table_config() {
  core::CoEstimatorConfig cfg;
  cfg.bus.line_cap_f = 0.5e-9;  // Tables 1-2 bus budget (Fig 7 uses 10 nF)
  cfg.sync_spin = 600'000;      // ~ an IPC round-trip per ISS invocation
  cfg.cache_hit_spin = 15000;  // caching-backplane bookkeeping per hit
  return cfg;
}

inline const unsigned kTableDmaSizes[] = {2, 4, 8, 16, 32, 64};

struct ModeResult {
  core::RunResults run;
  double seconds = 0.0;
};

/// Runs one acceleration mode on a fresh system instance (fresh workload
/// state, same seed => identical traffic). Wall clock is best-of-`reps`:
/// runs are deterministic, so every rep produces identical energies and the
/// only varying field is `wall_seconds` — taking the minimum sheds the
/// one-sided scheduler-noise spikes that otherwise break the wall-clock
/// ratio comparisons on busy single-CPU CI containers.
inline core::RunResults run_mode(systems::TcpIpSystem& sys,
                                 core::CoEstimator& est,
                                 core::Acceleration accel, int reps = 2) {
  est.config().accel = accel;
  core::RunResults best = est.run(sys.stimulus());
  for (int i = 1; i < reps; ++i) {
    core::RunResults r = est.run(sys.stimulus());
    if (r.wall_seconds < best.wall_seconds) best = r;
  }
  return best;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

/// Short git revision of the working tree, or "unknown" outside a checkout
/// (benchmarks run from installed artifacts, sandboxes without git, ...).
inline std::string git_sha_short() {
  std::string sha;
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p)) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

/// Persists one benchmark's headline numbers as BENCH_<name>.json so the
/// perf trajectory accumulates run over run (scripts/run_experiments.sh
/// collects the files). Metrics keep insertion order; values print with
/// enough digits to round-trip a double.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson& metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
    return *this;
  }

  /// Writes into $SOCPOWER_BENCH_JSON_DIR (default: the working directory).
  /// Returns false (after printing a warning) when the file cannot be
  /// written; benchmarks still pass — persistence is best-effort.
  bool write() const {
    std::string dir = ".";
    if (const char* d = std::getenv("SOCPOWER_BENCH_JSON_DIR"))
      if (*d) dir = d;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\"",
                 name_.c_str(), git_sha_short().c_str());
    for (const auto& [key, value] : metrics_)
      std::fprintf(f, ",\n  \"%s\": %.17g", key.c_str(), value);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("[bench-json] wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace socpower::bench
