// Session server: what the warm caches buy a returning client (E18).
//
// A cold request pays the whole pipeline — SW compilation, HW synthesis,
// macro-op characterization (all inside the server's prepare) plus a run
// that fills the ISS block cache and the HW reaction tables. A warm request
// against the same session replays out of those caches. This bench times
// both through the real AF_UNIX protocol (in-process server, loopback
// client) and gates on the service's whole value proposition: the warm
// request must be at least 2x faster, with every energy bit-identical and a
// strictly higher warm-cache hit rate.
//
// The wall-clock gate only applies to optimized builds (-O0 skews the
// cached/uncached ratio); energy equality is enforced always.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dist/wire.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace socpower;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double hit_rate(const serve::RequestStats& s) {
  const std::uint64_t total = s.warm_hits + s.warm_fills;
  return total == 0 ? 0.0
                    : static_cast<double>(s.warm_hits) /
                          static_cast<double>(total);
}

}  // namespace

int main() {
  bench::print_header(
      "Co-estimation as a service: cold prepare+run vs warm-session replay",
      "one session, real socket round-trips; results must stay bit-identical");

  if (!dist::supported()) {
    std::printf("fork/socketpair unavailable on this platform; nothing to "
                "measure\n\nSHAPE CHECK: PASS\n");
    return 0;
  }

  serve::ServerConfig scfg;
  scfg.socket_path = "/tmp/socpower_bench_serve_warm.sock";
  serve::Server server(scfg);
  if (!server.start()) {
    std::printf("cannot bind %s\n\nSHAPE CHECK: FAIL\n",
                scfg.socket_path.c_str());
    return 1;
  }
  std::string error;
  serve::Client client = serve::Client::connect(server.socket_path(), &error);
  if (!client.valid()) {
    std::printf("connect failed: %s\n\nSHAPE CHECK: FAIL\n", error.c_str());
    return 1;
  }

  // A TCP/IP workload big enough that replay time is measurable.
  serve::SystemParams system;
  system.name = "tcpip";
  system.set("num_packets", 6);
  system.set("packet_bytes", 128);
  system.set("ip_check_in_hw", 1);
  system.set("seed", 7);
  serve::RunRequest rr;  // defaults: batched HW, reaction cache on

  // ---- cold: prepare (inside open_session) + first estimate ----------------
  double t0 = now_seconds();
  std::string key;
  bool ok = client.open_session(system, serve::StructuralConfig{}, &key,
                                nullptr, &error);
  core::RunResults cold_res;
  serve::RequestStats cold_stats;
  ok = ok && client.estimate(key, rr, &cold_res, &cold_stats, &error);
  const double cold_s = now_seconds() - t0;
  if (!ok) {
    std::printf("cold request failed: %s\n\nSHAPE CHECK: FAIL\n",
                error.c_str());
    return 1;
  }

  // ---- warm: replays against the session's hot caches ----------------------
  constexpr int kWarmRuns = 5;
  bool identical = true;
  double warm_total_s = 0.0;
  serve::RequestStats warm_stats;
  for (int i = 0; i < kWarmRuns; ++i) {
    core::RunResults res;
    t0 = now_seconds();
    if (!client.estimate(key, rr, &res, &warm_stats, &error)) {
      std::printf("warm request failed: %s\n\nSHAPE CHECK: FAIL\n",
                  error.c_str());
      return 1;
    }
    warm_total_s += now_seconds() - t0;
    identical = identical && res.total_energy == cold_res.total_energy &&
                res.cpu_energy == cold_res.cpu_energy &&
                res.hw_energy == cold_res.hw_energy &&
                res.end_time == cold_res.end_time &&
                res.gate_sim_cycles == cold_res.gate_sim_cycles;
  }
  const double warm_s = warm_total_s / kWarmRuns;
  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;

  std::vector<std::uint8_t> blob;
  const bool ckpt_ok = client.checkpoint(key, &blob, &error);

  TextTable t({"request", "seconds", "hit rate", "energies"});
  t.add_row({"cold (prepare + run)", TextTable::fixed(cold_s, 4),
             TextTable::fixed(100.0 * hit_rate(cold_stats), 1) + "%",
             "reference"});
  t.add_row({"warm (avg of 5)", TextTable::fixed(warm_s, 4),
             TextTable::fixed(100.0 * hit_rate(warm_stats), 1) + "%",
             identical ? "bit-identical" : "MISMATCH"});
  std::printf("%s", t.render().c_str());
  std::printf("\nwarm speedup: %.2fx; checkpoint of the hot session: %zu "
              "bytes\n",
              speedup, ckpt_ok ? blob.size() : 0);

  const bool rate_ok = hit_rate(warm_stats) > hit_rate(cold_stats);
  bool shape_ok = identical && rate_ok && ckpt_ok;
  if (!rate_ok)
    std::printf("warm hit rate is not above cold: BAD\n");
#if defined(__OPTIMIZE__)
  const bool fast_enough = speedup >= 2.0;
  std::printf("speedup gate (>=2.00x warm vs cold): %.2fx -> %s\n", speedup,
              fast_enough ? "ok" : "TOO SLOW");
  shape_ok = shape_ok && fast_enough;
#else
  std::printf("speedup gate skipped (unoptimized build); bit-identity and "
              "hit-rate gates still enforced\n");
#endif

  bench::BenchJson json("serve_warm");
  json.metric("cold_s", cold_s)
      .metric("warm_s", warm_s)
      .metric("speedup_x", speedup)
      .metric("cold_hit_rate", hit_rate(cold_stats))
      .metric("warm_hit_rate", hit_rate(warm_stats))
      .metric("checkpoint_bytes", ckpt_ok ? static_cast<double>(blob.size())
                                          : 0.0)
      .metric("bit_identical", identical ? 1.0 : 0.0);
  json.write();

  server.stop();
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
