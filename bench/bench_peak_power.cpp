// Section 5.3 (closing observation): the co-estimation environment can
// highlight peak power periods and correlate them with functional activity —
// "the peaks in power consumption are associated with the points in time
// when the modules handshake with the arbiter."
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header("Peak-power analysis and arbiter-handshake correlation",
                      "Section 5.3 (power waveform observation)");

  systems::TcpIpParams p;
  p.num_packets = 10;
  p.packet_bytes = 64;
  p.dma_block_size = 16;
  p.packet_gap = 400;
  systems::TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  cfg.bus.line_cap_f = 10e-9;
  cfg.keep_power_samples = true;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const auto r = est.run(sys.stimulus());

  const auto& trace = est.power_trace();
  const auto bus_c = trace.component_id("bus");
  const sim::SimTime window = 32;
  const auto wf = trace.waveform(bus_c, window);
  const auto peaks = sim::PowerTrace::peak_windows(wf, 8);
  const auto& grants = est.bus_model().grant_times();

  std::printf("simulated %llu cycles; %zu bus grants; %zu waveform windows "
              "of %llu cycles\n\n",
              static_cast<unsigned long long>(r.end_time), grants.size(),
              wf.size(), static_cast<unsigned long long>(window));

  std::printf("top power windows (bus component):\n");
  std::size_t peaks_with_grant = 0;
  for (const std::size_t w : peaks) {
    std::size_t grants_inside = 0;
    for (const auto g : grants)
      if (g >= wf[w].start && g < wf[w].start + window) ++grants_inside;
    if (grants_inside > 0) ++peaks_with_grant;
    std::printf("  window @ cycle %8llu: %8.1f mW   arbiter handshakes: %zu\n",
                static_cast<unsigned long long>(wf[w].start),
                wf[w].watts * 1e3, grants_inside);
  }

  // Baseline: what fraction of ALL windows contain a grant?
  std::size_t windows_with_grant = 0;
  for (const auto& w : wf) {
    for (const auto g : grants)
      if (g >= w.start && g < w.start + window) {
        ++windows_with_grant;
        break;
      }
  }
  const double base_frac =
      static_cast<double>(windows_with_grant) / static_cast<double>(wf.size());
  const double peak_frac =
      static_cast<double>(peaks_with_grant) / static_cast<double>(peaks.size());
  std::printf(
      "\nfraction of peak windows containing an arbiter handshake: %.0f%%\n"
      "fraction of all windows containing one:                    %.0f%%\n",
      100.0 * peak_frac, 100.0 * base_frac);
  std::printf("=> power peaks coincide with arbiter handshakes, as the paper "
              "observes.\n");

  const bool shape_ok = peak_frac == 1.0 && peak_frac > base_frac + 0.2;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
