// Figure 4(b): per-path energy histograms motivating the caching policy.
//
// The paper shows two heavily-executed paths of a code fragment: one whose
// energy histogram is tightly clustered around its mean (cache it) and one
// that is spread out (keep simulating it). We reproduce the contrast with
// the TCP/IP system under a data-dependent (DSP-style) instruction power
// model: ip_check's per-block software path has low variance, while the
// checksum ASIC's word-accumulate path — whose gate-level switching follows
// the packet bytes — is wide.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "util/histogram.hpp"

using namespace socpower;

int main() {
  bench::print_header("Per-path energy histograms and the caching policy",
                      "Figure 4(b)(c), Section 4.2");

  systems::TcpIpParams p;
  p.num_packets = 120;
  p.packet_bytes = 64;
  p.dma_block_size = 16;
  systems::TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  cfg.data_nj_per_toggle = 0.4;  // DSP-style data-dependent CPU model
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();

  struct PathSamples {
    std::vector<double> energies;  // nJ
  };
  std::map<std::pair<cfsm::CfsmId, cfsm::PathId>, PathSamples> samples;
  est.set_transition_hook([&](const core::TransitionRecord& r) {
    samples[{r.task, r.path}].energies.push_back(to_nanojoules(r.energy));
  });
  est.run(sys.stimulus());

  auto hottest_path = [&](cfsm::CfsmId task) {
    std::pair<cfsm::CfsmId, cfsm::PathId> best{task, -1};
    std::size_t best_n = 0;
    for (const auto& [key, s] : samples)
      if (key.first == task && s.energies.size() > best_n) {
        best = key;
        best_n = s.energies.size();
      }
    return best;
  };

  const auto sw_key = hottest_path(sys.ip_check());
  const auto hw_key = hottest_path(sys.checksum());

  double worst_cv = 0;
  for (const auto& [key, label] :
       {std::pair{sw_key, "ip_check hot path (SW, per-DMA-block handling)"},
        std::pair{hw_key, "checksum hot path (HW, word accumulate)"}}) {
    const auto& es = samples[key].energies;
    RunningStats st;
    for (const double e : es) st.add(e);
    std::printf("\n--- %s ---\n", label);
    std::printf("executions: %zu   mean: %.2f nJ   stddev: %.3f nJ   "
                "cv: %.4f\n",
                es.size(), st.mean(), st.stddev(), st.cv());
    const double lo = st.min() - 1e-6, hi = st.max() + 1e-6;
    Histogram h(lo, hi + (hi - lo < 1e-9 ? 1.0 : 0.0), 12);
    for (const double e : es) h.add(e);
    std::printf("%s", h.render(46).c_str());
    std::printf("concentration within +-1 bin of mode: %.0f%%\n",
                100.0 * h.concentration(1));
    worst_cv = std::max(worst_cv, st.cv());

    const double thresh_variance = 1e-4;  // relative-variance policy knob
    const bool cacheable = st.cv() * st.cv() < thresh_variance;
    std::printf("caching policy (thresh_variance=%g): %s\n", thresh_variance,
                cacheable
                    ? "USE CACHED MEAN (clustered, like path 1,4,7,8)"
                    : "KEEP SIMULATING (spread out, like path 1,3,6,8)");
  }

  // Shape: the SW path must be much more concentrated than the HW path.
  RunningStats sw_st, hw_st;
  for (const double e : samples[sw_key].energies) sw_st.add(e);
  for (const double e : samples[hw_key].energies) hw_st.add(e);
  const bool shape_ok =
      sw_st.cv() < 0.02 && hw_st.cv() > 3.0 * (sw_st.cv() + 1e-9);
  std::printf("\nlow-variance path cv=%.4f, high-variance path cv=%.4f\n",
              sw_st.cv(), hw_st.cv());
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
