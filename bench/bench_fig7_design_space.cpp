// Figure 7: exhaustive exploration of the TCP/IP communication architecture:
// all meaningful bus-priority assignments x DMA block sizes, energy to
// process 3 network packets.
//
// Paper setup: Vdd = 3.3 V, Cbit = 10 nF/line, 8-bit address and data buses,
// 3 packets; 6 priority assignments x 7 DMA sizes (the paper says "48
// points"; 6 x 7 = 42 — we sweep all 42 and note the discrepancy). The
// paper's minimum: DMA = 128 with Create_Pack > IP_Check > Checksum.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "Communication-architecture design-space exploration (TCP/IP)",
      "Figure 7, Section 5.3");

  const unsigned dmas[] = {2, 4, 8, 16, 32, 64, 128};
  // The 6 permutations of (create_pack, ip_check, checksum) priorities.
  struct Prio {
    int create, ip, chk;
    const char* name;
  };
  const Prio prios[] = {
      {3, 2, 1, "CP>IP>CK"}, {3, 1, 2, "CP>CK>IP"}, {2, 3, 1, "IP>CP>CK"},
      {1, 3, 2, "IP>CK>CP"}, {2, 1, 3, "CK>CP>IP"}, {1, 2, 3, "CK>IP>CP"},
  };

  std::vector<std::string> header = {"priority \\ DMA"};
  for (const unsigned d : dmas) header.push_back(std::to_string(d));
  TextTable t(std::move(header));

  double best_e = 1e18;
  std::string best_name;
  unsigned best_dma = 0;
  int pi = 0;
  for (const Prio& pr : prios) {
    std::vector<std::string> row = {pr.name};
    for (const unsigned dma : dmas) {
      systems::TcpIpParams p;
      p.num_packets = 3;  // the paper's Figure 7 workload
      p.packet_bytes = 256;
      p.ip_check_in_hw = true;
      p.packet_gap = 30;
      p.dma_block_size = dma;
      p.prio_create = pr.create;
      p.prio_ipcheck = pr.ip;
      p.prio_checksum = pr.chk;
      systems::TcpIpSystem sys(p);
      core::CoEstimatorConfig cfg;
      cfg.bus.line_cap_f = 10e-9;  // Cbit = 10 nF, as stated in the paper
      cfg.bus.addr_bits = 8;
      cfg.bus.data_bits = 8;
      cfg.electrical.vdd_volts = 3.3;
      core::CoEstimator est(&sys.network(), cfg);
      sys.configure(est);
      est.prepare();
      const auto r = est.run(sys.stimulus());
      const double uj = to_microjoules(r.total_energy);
      row.push_back(TextTable::fixed(uj, 2));
      if (r.total_energy < best_e) {
        best_e = r.total_energy;
        best_name = pr.name;
        best_dma = dma;
      }
    }
    t.add_row(std::move(row));
    ++pi;
  }
  std::printf("total system energy (uJ) for 3 packets:\n%s",
              t.render().c_str());

  std::printf(
      "\nexplored %zu design points (6 priority assignments x 7 DMA sizes;\n"
      "the paper states 48 points but 6 x 7 = 42 — reproduced as 42).\n",
      std::size(prios) * std::size(dmas));
  std::printf("minimum-energy point: DMA=%u, priorities %s  (%.2f uJ)\n",
              best_dma, best_name.c_str(), to_microjoules(best_e));
  std::printf("paper's minimum: DMA=128, Create_Pack > IP_Check > Checksum\n");
  std::printf(
      "\nNote how the integration architecture alone moves total energy —\n"
      "HW and SW are identical across all 42 points — which is the paper's\n"
      "argument for exploring it with a co-estimation tool.\n");

  const bool shape_ok = best_dma == 128 && best_name == "CP>IP>CK";  // Create_Pack highest, as in the paper
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
