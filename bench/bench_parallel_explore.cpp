// Parallel design-space exploration: serial vs N-thread wall-clock for an
// 8-point communication-architecture sweep (the paper's Figure 7 workload
// shape), plus the parallel hardware batch flush. Energies must be
// bit-identical to the serial paths — the speedup is free accuracy-wise.
//
// Threads to sweep come from argv[1] or $SOCPOWER_THREADS (default 4).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "util/env.hpp"

using namespace socpower;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<core::ExplorationPoint> make_points() {
  // 8 points: 4 DMA block sizes x 2 priority assignments.
  std::vector<core::ExplorationPoint> pts;
  const int prios[2][3] = {{3, 2, 1}, {1, 2, 3}};
  for (const unsigned dma : {4u, 16u, 64u, 128u}) {
    for (const auto& pr : prios) {
      auto make_run = [=](core::Acceleration accel) {
        return [=]() {
          systems::TcpIpParams p;
          p.num_packets = 6;
          p.packet_bytes = 128;
          p.packet_gap = 30;
          p.dma_block_size = dma;
          p.prio_create = pr[0];
          p.prio_ipcheck = pr[1];
          p.prio_checksum = pr[2];
          p.ip_check_in_hw = true;
          systems::TcpIpSystem sys(p);
          core::CoEstimatorConfig cfg;
          cfg.bus.line_cap_f = 10e-9;
          cfg.accel = accel;
          cfg.sync_spin = 200'000;  // model the per-invocation IPC round-trip
          core::CoEstimator est(&sys.network(), cfg);
          sys.configure(est);
          est.prepare();
          return est.run(sys.stimulus());
        };
      };
      char label[48];
      std::snprintf(label, sizeof label, "dma=%u prio=%d/%d/%d", dma, pr[0],
                    pr[1], pr[2]);
      pts.push_back({label, make_run(core::Acceleration::kCaching),
                     make_run(core::Acceleration::kNone)});
    }
  }
  return pts;
}

bool outcomes_identical(const core::ExplorationOutcome& a,
                        const core::ExplorationOutcome& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].label != b.ranked[i].label) return false;
    if (a.ranked[i].coarse_energy != b.ranked[i].coarse_energy) return false;
    if (a.ranked[i].exact_energy != b.ranked[i].exact_energy) return false;
    if (a.ranked[i].coarse_rank != b.ranked[i].coarse_rank) return false;
  }
  return a.winner_confirmed == b.winner_confirmed;
}

core::RunResults run_flush(unsigned threads) {
  systems::TcpIpParams p;
  p.num_packets = 8;
  p.packet_bytes = 128;
  p.ip_check_in_hw = true;  // two ASICs -> two gate-level batches
  systems::TcpIpSystem sys(p);
  core::CoEstimatorConfig cfg;
  cfg.hw_flush_threads = threads;
  cfg.sync_spin = 200'000;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  return est.run(sys.stimulus());
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Parallel co-estimation: threaded exploration and HW batch flush",
      "Section 6 workload (design-space exploration), engineering speedup");

  unsigned max_threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
               : static_cast<unsigned>(
                     socpower::util::env_int("SOCPOWER_THREADS", 4));
  if (max_threads < 2) max_threads = 2;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, sweeping up to %u pool threads\n\n", hw,
              max_threads);

  // ---- threaded two-phase exploration -------------------------------------
  const auto points = make_points();
  std::printf("exploration: %zu points, verify_top=3, caching coarse pass\n",
              points.size());

  double t0 = now_seconds();
  const auto serial = core::explore(points, /*verify_top=*/3);
  const double serial_s = now_seconds() - t0;

  TextTable t({"threads", "seconds", "speedup", "energies"});
  t.add_row({"1 (serial)", TextTable::fixed(serial_s, 3), "1.00x", "reference"});

  bool all_identical = true;
  double best_speedup = 1.0;
  std::vector<unsigned> sweep;
  for (unsigned n = 2; n <= max_threads; n *= 2) sweep.push_back(n);
  if (sweep.empty() || sweep.back() != max_threads)
    sweep.push_back(max_threads);
  for (const unsigned n : sweep) {
    t0 = now_seconds();
    const auto par =
        core::explore(points, /*verify_top=*/3, {.threads = n});
    const double par_s = now_seconds() - t0;
    const bool same = outcomes_identical(serial, par);
    all_identical = all_identical && same;
    const double speedup = serial_s / par_s;
    best_speedup = std::max(best_speedup, speedup);
    char sp[16];
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    t.add_row({std::to_string(n), TextTable::fixed(par_s, 3), sp,
               same ? "bit-identical" : "MISMATCH"});
  }
  std::printf("%s", t.render().c_str());

  // ---- parallel hardware batch flush --------------------------------------
  std::printf("\nhardware batch flush (offline mode, one task per ASIC):\n");
  t0 = now_seconds();
  const auto flush_serial = run_flush(1);
  const double flush_serial_s = now_seconds() - t0;
  t0 = now_seconds();
  const auto flush_par = run_flush(max_threads);
  const double flush_par_s = now_seconds() - t0;
  const bool flush_same =
      flush_serial.total_energy == flush_par.total_energy &&
      flush_serial.hw_energy == flush_par.hw_energy &&
      flush_serial.process_energy == flush_par.process_energy &&
      flush_serial.gate_sim_cycles == flush_par.gate_sim_cycles;
  all_identical = all_identical && flush_same;
  std::printf(
      "  serial %.3fs, %u threads %.3fs (%.2fx), totals %s\n", flush_serial_s,
      max_threads, flush_par_s, flush_serial_s / flush_par_s,
      flush_same ? "bit-identical" : "MISMATCH");

  // ---- verdict -------------------------------------------------------------
  // Energy equality is the hard requirement everywhere. The wall-clock gate
  // only applies where the hardware can express it: with >= 4 hardware
  // threads a 4-thread, 8-point exploration must be >= 2x faster.
  bool shape_ok = all_identical;
  if (hw >= 4 && max_threads >= 4) {
    const bool fast_enough = best_speedup >= 2.0;
    std::printf("\nspeedup gate (>=2.00x at >=4 threads): %.2fx -> %s\n",
                best_speedup, fast_enough ? "ok" : "TOO SLOW");
    shape_ok = shape_ok && fast_enough;
  } else {
    std::printf(
        "\nspeedup gate skipped: %u hardware thread(s) cannot express a "
        "parallel speedup (energy equality still enforced)\n",
        hw);
  }

  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
