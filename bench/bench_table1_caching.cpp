// Table 1: speedup and accuracy of the energy/delay caching technique on
// the TCP/IP subsystem, swept over the bus DMA block size.
//
// Paper values (Sun Ultra Enterprise 450):
//   DMA   orig E (mJ)  orig CPU (s)  caching CPU (s)  speedup
//    2      0.54         8051.52        428.92          18.8
//    4      0.44         4023.36        248.13          16.2
//    8      0.39         2080.77        156.91          13.3
//   16      0.36         1398.77        117.90          11.9
//   32      0.35          852.25         90.88           9.4
//   64      0.34          680.78         78.88           8.6
// Caching reports NO separate energy column: with the SPARClite's
// data-independent instruction-level power model and master-side cache
// references, caching loses no accuracy at all.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header("Energy/delay caching: speedup and accuracy (TCP/IP)",
                      "Table 1, Section 5.2");

  TextTable t({"DMA", "orig E (mJ)", "orig CPU (s)", "caching CPU (s)",
               "speedup", "energy err %", "ISS calls orig->cached",
               "paper E", "paper speedup"});
  const double paper_e[] = {0.54, 0.44, 0.39, 0.36, 0.35, 0.34};
  const double paper_sp[] = {18.8, 16.2, 13.3, 11.9, 9.4, 8.6};

  std::vector<double> speedups;
  bool exact = true;
  double min_sp = 1e9, max_sp = 0;
  int i = 0;
  std::uint64_t prev_invocations = ~0ull;
  bool monotone = true;
  for (const unsigned dma : bench::kTableDmaSizes) {
    systems::TcpIpSystem sys(bench::table_workload(dma));
    core::CoEstimator est(&sys.network(), bench::table_config());
    sys.configure(est);
    est.prepare();
    const auto orig = bench::run_mode(sys, est, core::Acceleration::kNone);
    const auto cached =
        bench::run_mode(sys, est, core::Acceleration::kCaching);
    const double sp = orig.wall_seconds / cached.wall_seconds;
    const double err = percent_error(cached.total_energy, orig.total_energy);
    exact = exact && err < 1e-6;
    speedups.push_back(sp);
    min_sp = std::min(min_sp, sp);
    max_sp = std::max(max_sp, sp);
    // The declining-speedup shape is driven by a deterministic mechanism:
    // smaller DMA blocks mean more (and more repetitive) software
    // transitions, i.e. strictly more ISS invocations for caching to
    // absorb. Gate on that work profile rather than on the wall-clock
    // ratios directly — the full runs now finish in well under a second
    // each (the ISS fast path), so per-row wall noise on a loaded
    // single-CPU machine exceeds the spacing between adjacent rows.
    monotone = monotone && orig.iss_invocations < prev_invocations;
    prev_invocations = orig.iss_invocations;
    t.add_row({std::to_string(dma),
               TextTable::fixed(to_millijoules(orig.total_energy), 3),
               TextTable::fixed(orig.wall_seconds, 3),
               TextTable::fixed(cached.wall_seconds, 3),
               TextTable::fixed(sp, 1), TextTable::num(err),
               std::to_string(orig.iss_invocations) + "->" +
                   std::to_string(cached.iss_invocations),
               TextTable::fixed(paper_e[i], 2),
               TextTable::fixed(paper_sp[i], 1)});
    ++i;
  }
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nAs in the paper: caching introduces ZERO energy error (the\n"
      "instruction-level power model is data-value independent and the\n"
      "cache-reference stream is issued by the master from the behavioral\n"
      "model, so skipping the ISS changes nothing), speedups are largest at\n"
      "small DMA sizes (more, shorter, more repetitive transitions), and\n"
      "decrease monotonically as the DMA size grows.\n");
  std::printf("measured speedup span: %.1fx .. %.1fx (paper: 8.6x .. 18.8x)\n",
              min_sp, max_sp);
  const bool shape_ok = exact && monotone && min_sp > 2.0 &&
                        max_sp >= min_sp;  // largest speedup at small DMA
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");

  bench::BenchJson json("table1_caching");
  json.metric("speedup_min", min_sp)
      .metric("speedup_max", max_sp)
      .metric("zero_energy_error", exact ? 1.0 : 0.0)
      .metric("iss_profile_monotone", monotone ? 1.0 : 0.0);
  json.write();
  return shape_ok ? 0 : 1;
}
