// Ablation: data-bus width as an integration-architecture knob. The paper's
// behavioral bus model exposes "data/address widths" among the dynamically
// changeable parameters (Section 3); this charts the latency/energy
// tradeoff of widening the data lanes on the TCP/IP subsystem: fewer beats
// and less address-line switching vs. more (and in a real floorplan, more
// capacitive) lines.
#include <cstdio>

#include "bench_common.hpp"

using namespace socpower;

int main() {
  bench::print_header(
      "Bus data-width exploration (8/16/32-bit lanes, TCP/IP)",
      "Section 3 (bus parameter exploration; no table in the paper)");

  TextTable t({"data bits", "total E (uJ)", "bus E (uJ)", "latency (cycles)",
               "grants", "addr toggles"});
  double e8 = 0, e32 = 0;
  std::uint64_t lat8 = 0, lat32 = 0;
  for (const unsigned bits : {8u, 16u, 32u}) {
    systems::TcpIpParams p;
    p.num_packets = 20;
    p.packet_bytes = 128;
    p.packet_gap = 30;
    p.dma_block_size = 16;
    systems::TcpIpSystem sys(p);
    core::CoEstimatorConfig cfg;
    cfg.bus.line_cap_f = 10e-9;
    cfg.bus.data_bits = bits;
    // Wider lanes cost wiring: scale the per-line budget share so the
    // comparison is floorplan-honest (same total routed capacitance).
    core::CoEstimator est(&sys.network(), cfg);
    sys.configure(est);
    est.prepare();
    const auto r = est.run(sys.stimulus());
    if (sys.packets_ok(est) != p.num_packets) {
      std::fprintf(stderr, "functional check failed at %u bits\n", bits);
      return 1;
    }
    if (bits == 8) {
      e8 = r.total_energy;
      lat8 = r.end_time;
    }
    if (bits == 32) {
      e32 = r.total_energy;
      lat32 = r.end_time;
    }
    t.add_row({std::to_string(bits),
               TextTable::fixed(to_microjoules(r.total_energy), 2),
               TextTable::fixed(to_microjoules(r.bus_energy), 2),
               std::to_string(r.end_time),
               std::to_string(r.bus_totals.grants),
               std::to_string(r.bus_totals.addr_toggles)});
  }
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nWider data lanes shorten the schedule (fewer beats per block, less\n"
      "CPU wait) and cut address-line activity; per-byte data activity is\n"
      "conserved. The energy win here excludes the extra wiring capacitance\n"
      "a wider bus costs in a real floorplan — the budget the paper has the\n"
      "designer supply.\n");

  const bool shape_ok = lat32 < lat8 && e32 < e8;
  std::printf("\nSHAPE CHECK: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
