#!/usr/bin/env python3
"""Validate a socpower Chrome trace-event export.

Checks that the file is (1) valid JSON, (2) shaped like the Chrome
trace-event "JSON Object Format" our telemetry exporter emits, and (3)
internally consistent (non-negative durations, args where flags promise
them, a counter snapshot under otherData). CI runs explore_tcpip with
SOCPOWER_TRACE set and fails the build if the export stops loading in
chrome://tracing / Perfetto.

Usage: check_trace.py trace.json [--require-events]
Exit code 0 on a valid trace, 1 with a diagnostic otherwise.
"""

import json
import sys

VALID_PHASES = {"X", "i", "M"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    if not isinstance(ev, dict):
        fail(f"traceEvents[{i}] is not an object")
    for key in ("name", "ph", "pid", "tid"):
        if key not in ev:
            fail(f"traceEvents[{i}] missing required key '{key}'")
    if not isinstance(ev["name"], str) or not ev["name"]:
        fail(f"traceEvents[{i}] has an empty or non-string name")
    ph = ev["ph"]
    if ph not in VALID_PHASES:
        fail(f"traceEvents[{i}] has unexpected phase {ph!r}")
    if ph == "M":
        if ev["name"] != "thread_name" or "args" not in ev:
            fail(f"traceEvents[{i}]: metadata event is not a thread_name")
        return
    if "ts" not in ev:
        fail(f"traceEvents[{i}] ({ph}) missing timestamp 'ts'")
    if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
        fail(f"traceEvents[{i}] has invalid ts {ev['ts']!r}")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"traceEvents[{i}] complete event has invalid dur {dur!r}")
    args = ev.get("args")
    if args is not None:
        if not isinstance(args, dict):
            fail(f"traceEvents[{i}] args is not an object")
        for k in ("sim_time", "arg"):
            if k in args and not isinstance(args[k], int):
                fail(f"traceEvents[{i}] args.{k} is not an integer")


def check_snapshot(snap):
    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            fail(f"otherData.snapshot missing '{section}'")
        if not isinstance(snap[section], dict):
            fail(f"otherData.snapshot.{section} is not an object")
    for name, value in snap["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"counter {name!r} has invalid value {value!r}")
    for name, g in snap["gauges"].items():
        if not isinstance(g, dict) or "value" not in g or "peak" not in g:
            fail(f"gauge {name!r} is malformed: {g!r}")
    for name, h in snap["histograms"].items():
        if not isinstance(h, dict) or "count" not in h or "mean" not in h:
            fail(f"histogram {name!r} is malformed: {h!r}")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    require_events = "--require-events" in argv[2:]

    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(trace, dict):
        fail("top level is not an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("'traceEvents' missing or not an array")

    n_spans = 0
    for i, ev in enumerate(events):
        check_event(i, ev)
        if ev["ph"] in ("X", "i"):
            n_spans += 1
    if require_events and n_spans == 0:
        fail("trace contains no duration/instant events "
             "(was tracing actually enabled?)")

    other = trace.get("otherData")
    if not isinstance(other, dict):
        fail("'otherData' missing or not an object")
    dropped = other.get("dropped_events")
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"otherData.dropped_events invalid: {dropped!r}")
    if "snapshot" in other:
        check_snapshot(other["snapshot"])

    print(f"check_trace: OK: {len(events)} events ({n_spans} spans/instants, "
          f"{dropped} dropped) in {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
