#!/usr/bin/env python3
"""Guard the benchmark trajectory: fresh BENCH_*.json vs committed baselines.

Every perf-bearing benchmark persists its headline numbers as
BENCH_<name>.json (bench_common.hpp's BenchJson).  The repository keeps the
blessed numbers at the repo root; CI regenerates them into
$SOCPOWER_BENCH_JSON_DIR and this script compares the two sets:

  * schema: every fresh file must carry a non-empty "bench" and "git_sha"
    and only finite numeric metrics (NaN/Inf means a broken measurement,
    not a slow one);
  * trend: a metric that regresses by more than --threshold (default 25 %)
    against its committed baseline fails the run.  Direction comes from the
    metric name: seconds/error/overhead-style metrics must not grow,
    speedup/throughput/hit-rate-style metrics must not shrink, and
    *identical-style invariants must match exactly.  Everything else
    (point counts, gate counts, workload sizes) is informational.

Benchmarks present on only one side are skipped with a note: adding a new
benchmark must not fail the trend gate, and retiring one is a review
decision, not a CI decision.

Usage: check_bench_trend.py [--baseline-dir DIR] [--current-dir DIR]
                            [--threshold FRACTION]
Exit code 0 when every compared metric holds, 1 otherwise.
"""

import argparse
import glob
import json
import math
import os
import sys

LOWER_IS_BETTER = ("seconds", "err", "overhead", "dropped")
LOWER_SUFFIXES = ("_s", "_ms")
HIGHER_IS_BETTER = ("speedup", "throughput", "hit_rate", "kreact", "per_sec")
EXACT = ("identical",)


def fail(msg):
    print(f"check_bench_trend: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: unreadable ({e})")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    for key in ("bench", "git_sha"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            fail(f"{path}: missing or empty '{key}'")
    metrics = {}
    for key, value in doc.items():
        if key in ("bench", "git_sha"):
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"{path}: metric '{key}' is not numeric")
        if not math.isfinite(value):
            fail(f"{path}: metric '{key}' is not finite ({value})")
        metrics[key] = float(value)
    return doc["bench"], metrics


def direction(name):
    lowered = name.lower()
    if any(pat in lowered for pat in EXACT):
        return "exact"
    # Speedup-style names win over the "_s" suffix rule ("..._speedup").
    if any(pat in lowered for pat in HIGHER_IS_BETTER):
        return "higher"
    if lowered.endswith(LOWER_SUFFIXES) or any(
            pat in lowered for pat in LOWER_IS_BETTER):
        return "lower"
    return "info"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=None,
                    help="directory of committed BENCH_*.json "
                         "(default: repository root, next to this script)")
    ap.add_argument("--current-dir", default=None,
                    help="directory of freshly generated BENCH_*.json "
                         "(default: $SOCPOWER_BENCH_JSON_DIR, else cwd)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    baseline_dir = args.baseline_dir or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..")
    current_dir = args.current_dir or os.environ.get(
        "SOCPOWER_BENCH_JSON_DIR") or "."

    current_files = sorted(glob.glob(os.path.join(current_dir,
                                                  "BENCH_*.json")))
    if not current_files:
        fail(f"no BENCH_*.json found in {current_dir}")

    failures = []
    compared = 0
    for path in current_files:
        bench, current = load(path)
        base_path = os.path.join(baseline_dir, os.path.basename(path))
        if not os.path.exists(base_path):
            print(f"  {bench}: no committed baseline, skipped")
            continue
        _, baseline = load(base_path)
        for name in sorted(current):
            if name not in baseline:
                print(f"  {bench}.{name}: new metric, skipped")
                continue
            cur, base = current[name], baseline[name]
            kind = direction(name)
            verdict = "ok"
            if kind == "exact":
                if cur != base:
                    verdict = f"REGRESSION (expected {base}, got {cur})"
            elif kind == "lower":
                if cur > base * (1.0 + args.threshold):
                    verdict = f"REGRESSION (+{100.0 * (cur / base - 1.0):.1f}%)" \
                        if base > 0 else f"REGRESSION ({base} -> {cur})"
            elif kind == "higher":
                if cur < base * (1.0 - args.threshold):
                    verdict = f"REGRESSION (-{100.0 * (1.0 - cur / base):.1f}%)" \
                        if base > 0 else f"REGRESSION ({base} -> {cur})"
            else:
                print(f"  {bench}.{name}: {base:g} -> {cur:g} (info)")
                continue
            compared += 1
            print(f"  {bench}.{name} [{kind}]: {base:g} -> {cur:g}  {verdict}")
            if verdict != "ok":
                failures.append(f"{bench}.{name}: {verdict}")

    if failures:
        for f in failures:
            print(f"check_bench_trend: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench_trend: OK ({compared} metrics compared, "
          f"threshold {100.0 * args.threshold:.0f}%)")


if __name__ == "__main__":
    main()
