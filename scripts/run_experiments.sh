#!/usr/bin/env sh
# Rebuild everything, run the full test suite and every paper-reproduction
# benchmark, and capture the outputs at the repository root.
#
# SOCPOWER_THREADS sets the worker-thread count for the parallel
# exploration paths (default: one per hardware thread). Energies are
# bit-identical for any value; only wall-clock changes.
#
# SOCPOWER_ISS_RUNS sets the invocations per kernel for the ISS throughput
# benchmark (bench_iss_throughput); results are bit-identical for any value.
#
# SOCPOWER_DIST_WORKERS sets the forked-worker count for the distributed
# paths (sharded exploration, bench_sharded_explore); also bit-identical.
#
# SOCPOWER_SERVE_SOCKET / SOCPOWER_SERVE_THREADS place the session-server
# pass's socket and size its worker pool (defaults below); bit-identical too.
set -e
cd "$(dirname "$0")/.."

SOCPOWER_THREADS="${SOCPOWER_THREADS:-$(nproc 2>/dev/null || echo 1)}"
export SOCPOWER_THREADS
SOCPOWER_DIST_WORKERS="${SOCPOWER_DIST_WORKERS:-$SOCPOWER_THREADS}"
export SOCPOWER_DIST_WORKERS

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Benchmarks that persist headline numbers (speedups, hit rates, git sha)
# write BENCH_<name>.json into this directory; see bench_common.hpp.
SOCPOWER_BENCH_JSON_DIR="$(pwd)"
export SOCPOWER_BENCH_JSON_DIR

for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "benchmark json results:"
for j in BENCH_*.json; do
  [ -f "$j" ] && { echo "-- $j"; cat "$j"; }
done

./build/examples/explore_tcpip 2 64 "$SOCPOWER_THREADS" 2>&1 \
  | tee explore_output.txt

# Same exploration with remote HW estimators + process-sharded two-phase
# sweep: results must match the in-process run above bit for bit.
SOCPOWER_HW_REMOTE=1 ./build/examples/explore_tcpip 2 64 \
  "$SOCPOWER_THREADS" 2>&1 | tee explore_remote_output.txt

# Three-tier funnel: the calibrated analytical backend prefilters the DMA
# sweep before the coarse ranking and exact verification. The recommended
# winner must match the two-phase runs above.
SOCPOWER_HW_ANALYTICAL=1 SOCPOWER_ANALYTICAL_PREFILTER=3 \
  ./build/examples/explore_tcpip 2 64 "$SOCPOWER_THREADS" 2>&1 \
  | tee explore_analytical_output.txt

# Multicore pass: the N-core scenario family over 1/2/4 cores on both
# interconnects (co- vs separate-estimated energy, then the two-phase
# (cores, interconnect) exploration). bench_noc_contention already ran in
# the bench loop above and persisted BENCH_noc_contention.json; this run
# exercises the same family through the explorer surface, process-sharded.
./build/examples/multicore_sweep 6 "$SOCPOWER_THREADS" 2>&1 \
  | tee multicore_output.txt

# Session-server pass: a socpower_serve daemon, then the client demo twice
# against it — the second client's "cold" sweep starts warm because the
# daemon kept the session alive. The daemon prints its serve.* counter
# table when it stops.
SOCPOWER_SERVE_SOCKET="${SOCPOWER_SERVE_SOCKET:-/tmp/socpower_experiments.sock}"
export SOCPOWER_SERVE_SOCKET
SOCPOWER_SERVE_THREADS="${SOCPOWER_SERVE_THREADS:-$SOCPOWER_THREADS}"
export SOCPOWER_SERVE_THREADS
./build/src/serve/socpower_serve > serve_output.txt 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
i=0
while [ ! -S "$SOCPOWER_SERVE_SOCKET" ] && [ "$i" -lt 50 ]; do
  i=$((i + 1)); sleep 0.1
done
./build/examples/client_sweep 2>&1 | tee -a serve_output.txt
./build/examples/client_sweep 2>&1 | tee -a serve_output.txt
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
trap - EXIT

echo
echo "shape checks:"
grep -c "SHAPE CHECK: PASS" bench_output.txt || true
if grep -q "SHAPE CHECK: FAIL" bench_output.txt; then
  echo "SHAPE CHECK FAILURES PRESENT" >&2
  exit 1
fi
