#!/usr/bin/env bash
# Compile every public header standalone (-fsyntax-only) to prove each one
# carries its own includes — a header that only builds when included after
# another breaks downstream users and precompiled-header setups. New backend
# headers under src/core/estimators/ are the motivating case: they must be
# includable without the facade.
#
# Usage: scripts/check_headers.sh [compiler]   (default: ${CXX:-g++})
set -u

cd "$(dirname "$0")/.."
compiler="${1:-${CXX:-g++}}"

fails=0
checked=0
while IFS= read -r hdr; do
  checked=$((checked + 1))
  if ! "$compiler" -std=c++20 -fsyntax-only -I src -x c++ "$hdr" 2>/tmp/hdr_err.$$; then
    echo "FAIL: $hdr does not compile standalone" >&2
    sed 's/^/    /' /tmp/hdr_err.$$ >&2
    fails=$((fails + 1))
  fi
done < <(find src -name '*.hpp' | sort)
rm -f /tmp/hdr_err.$$

echo "checked $checked headers, $fails failures"
[ "$fails" -eq 0 ]
